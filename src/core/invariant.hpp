// SymCeX -- forward invariant checking with shortest counterexamples.
//
// AG p can be decided two ways: backward, as !E[true U !p] (what the
// general CTL checker does -- the fixpoint explores predecessors of !p,
// possibly far outside the reachable states), or forward, by breadth-first
// reachability from the initial states, stopping at the first layer that
// contains a violation.  The forward direction terminates as early as
// possible, is bounded by the reachable states, and its saved layers are
// forward "onion rings": walking them backward from the violation yields a
// counterexample of minimal length -- a practical answer to the paper's
// Section 9 call for shorter counterexamples.
//
// Fairness: consistent with the rest of the checker, a violation only
// counts if the violating state starts a fair path (AG under fairness
// quantifies over fair paths), and the finite prefix is extended to a fair
// lasso on request.

#pragma once

#include <cstddef>
#include <optional>

#include "bdd/bdd.hpp"
#include "core/checker.hpp"
#include "core/trace.hpp"
#include "core/witness.hpp"

namespace symcex::core {

struct InvariantResult {
  bool holds = false;
  /// Counterexample when !holds: a shortest path from an initial state to
  /// a (fair) violating state, extended to a fair lasso by default.
  std::optional<Trace> counterexample;
  /// Number of image steps taken before deciding (the violation depth, or
  /// the reachability diameter when the invariant holds).
  std::size_t depth = 0;
  /// Three-valued verdict: kUnknown when the resource budget ran out
  /// before a decision (then holds is false, counterexample empty,
  /// unknown_reason says why, and depth counts the layers explored).
  Verdict verdict = Verdict::kUnknown;
  std::string unknown_reason;
};

/// Check AG `invariant` by forward reachability.  The verdict agrees with
/// Checker::holds("AG p"); the counterexample prefix is minimal over all
/// paths to a fair violating state.  A guard::ResourceExhausted abort is
/// caught and reported as verdict == kUnknown; rerun after raising the
/// budget on the same manager for the real verdict.
[[nodiscard]] InvariantResult check_invariant(Checker& checker,
                                              const bdd::Bdd& invariant,
                                              bool extend_to_fair = true);

}  // namespace symcex::core
