#include "core/eval_context.hpp"

#include <algorithm>
#include <cassert>

#include "diag/metrics.hpp"
#include "guard/guard.hpp"
#include "ts/parallel.hpp"

namespace symcex::core {

EvalContext::EvalContext(ts::TransitionSystem& ts, ts::ImageMethod method,
                         std::optional<bool> use_care_set, unsigned threads)
    : ts_(ts),
      method_(method),
      care_requested_(
          use_care_set.value_or(diag::env_flag("SYMCEX_CARE_SET"))) {
  const unsigned n =
      threads == 0 ? ts::env_threads() : std::min<unsigned>(threads, 64);
  if (n > 1) {
    exec_ = std::make_unique<ts::ParallelExecutor>(ts_.manager(), n);
    // The reachability fixpoint (and anything else calling the system's
    // *_parallel sweeps directly) fans out over the same pool.
    ts_.set_parallel(exec_.get());
  }
}

EvalContext::~EvalContext() {
  if (exec_ != nullptr) ts_.set_parallel(nullptr);
}

unsigned EvalContext::threads() const {
  return exec_ != nullptr ? exec_->threads() : 1;
}

void EvalContext::set_reduction(const analyze::Reduction* reduction) {
  if (reduction_ == reduction) return;
  reduction_ = reduction;
  // The care set and the restricted relation copies were derived from the
  // previous relation view; rebuild lazily on the next sweep.
  care_ready_ = false;
  care_on_ = false;
  care_ = ts::DontCare{};
}

bool EvalContext::care_active() {
  ensure_care();
  return care_on_;
}

const bdd::Bdd& EvalContext::care_set() {
  ensure_care();
  if (care_on_) return care_.set;
  if (trivial_care_.is_null()) trivial_care_ = ts_.manager().one();
  return trivial_care_;
}

void EvalContext::ensure_care() {
  if (care_ready_) return;
  if (!care_requested_) {
    care_ready_ = true;
    return;
  }
  const bool diag_on = diag::enabled();
  auto& r = diag::Registry::global();
  try {
    const diag::PhaseScope phase("care");
    // Under a COI reduction the care set is the reduced reachable states:
    // they are closed under the reduced relation, which is what every
    // sweep below consumes.
    const bdd::Bdd& reach =
        reduction_ != nullptr ? reduction_->reachable() : ts_.reachable();
    if (reach.is_false() || reach == ts_.manager().one()) {
      // Empty: no state is reachable, nothing to evaluate on (and minimize
      // requires a satisfiable care set).  Full: restriction is the
      // identity; skip the per-sweep overhead entirely.
      care_ready_ = true;
      if (diag_on) r.add("care.trivial");
      return;
    }
    ts::DontCare dc;
    dc.set = reach;
    std::size_t before = 0;
    std::size_t after = 0;
    // Build only the relation copy the configured sweep method reads.
    // minimize() agrees with the exact conjunct on every current-rail
    // assignment inside the care set; each restricted copy is kept only
    // when it is actually smaller.  Support never grows, so the
    // early-quantification schedules stay valid for the restricted copies.
    if (method_ == ts::ImageMethod::kMonolithic) {
      const bdd::Bdd& exact =
          reduction_ != nullptr ? reduction_->trans() : ts_.trans();
      before = exact.dag_size();
      const bdd::Bdd reduced = exact.minimize(reach);
      dc.trans = reduced.dag_size() <= before ? reduced : exact;
      after = dc.trans.dag_size();
    } else {
      const std::vector<bdd::Bdd>& clusters =
          reduction_ != nullptr ? reduction_->clusters() : ts_.trans_clusters();
      for (const auto& c : clusters) {
        const bdd::Bdd reduced = c.minimize(reach);
        before += c.dag_size();
        dc.clusters.push_back(reduced.dag_size() <= c.dag_size() ? reduced
                                                                 : c);
        after += dc.clusters.back().dag_size();
      }
    }
    care_ = std::move(dc);
    care_on_ = true;
    care_ready_ = true;
    if (diag_on) {
      r.add("care.activated");
      r.gauge_set("care.set_dag", static_cast<double>(reach.dag_size()));
      r.gauge_set("care.rel_dag_exact", static_cast<double>(before));
      r.gauge_set("care.rel_dag_restricted", static_cast<double>(after));
    }
  } catch (const guard::ResourceExhausted&) {
    // The reachability fixpoint lost the budget race.  Care is purely an
    // optimisation, so swallow the abort and run exact sweeps; the
    // manager already unwound audit-clean, and ts_.reachable() left its
    // cache empty, so a later retry under a raised budget still works.
    care_ready_ = true;
    if (diag_on) r.add("care.fallback_exhausted");
  }
}

void EvalContext::prewarm_parallel() {
  if (reduction_ != nullptr) {
    // Reduction::image/preimage reach for the lazy monolithic reduced
    // relation on the monolithic method, with <= 1 cluster, or when the
    // care copy for that shape was never built.
    if (method_ == ts::ImageMethod::kMonolithic ||
        reduction_->clusters().size() <= 1) {
      if (!care_on_ || care_.trans.is_null()) (void)reduction_->trans();
    }
    return;
  }
  if (!care_on_ && (method_ == ts::ImageMethod::kMonolithic ||
                    ts_.trans_clusters().size() == 1)) {
    (void)ts_.trans();
  }
}

bdd::Bdd EvalContext::image_sequential(const bdd::Bdd& states) {
  if (reduction_ != nullptr) {
    return reduction_->image(states, method_, care_on_ ? &care_ : nullptr);
  }
  if (!care_on_) return ts_.image(states, method_);
  return ts_.image(states, method_, &care_);
}

bdd::Bdd EvalContext::preimage_sequential(const bdd::Bdd& states) {
  if (reduction_ != nullptr) {
    return reduction_->preimage(states, method_, care_on_ ? &care_ : nullptr);
  }
  return ts_.preimage(states, method_, care_on_ ? &care_ : nullptr);
}

bdd::Bdd EvalContext::image(const bdd::Bdd& states) {
  ensure_care();
#ifndef NDEBUG
  // The exactness of the restricted image rests on the operand being
  // reachable (see ts::DontCare); every core call site satisfies this.
  assert((!care_on_ || states.implies(care_.set)) &&
         "EvalContext::image: operand leaves the care set");
#endif
  if (exec_ != nullptr) {
    // Disjoint slices of `states` each satisfy the care contract (they
    // imply `states`), and image distributes over their union -- the
    // combined result is the identical canonical BDD (DESIGN.md §14).
    prewarm_parallel();
    return ts::sliced_parallel_sweep(
        ts_.manager(), *exec_, states,
        [this](const bdd::Bdd& s) { return image_sequential(s); });
  }
  return image_sequential(states);
}

bdd::Bdd EvalContext::preimage(const bdd::Bdd& states) {
  ensure_care();
  if (exec_ != nullptr) {
    prewarm_parallel();
    return ts::sliced_parallel_sweep(
        ts_.manager(), *exec_, states,
        [this](const bdd::Bdd& s) { return preimage_sequential(s); });
  }
  return preimage_sequential(states);
}

}  // namespace symcex::core
