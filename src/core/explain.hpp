// SymCeX -- top-level counterexample / witness driver.
//
// Section 6: "when the model checker determines that a formula with a
// universal path quantifier is false, it will find a computation path which
// demonstrates that the negation of the formula is true.  Likewise, when
// the model checker determines that a formula with an existential path
// quantifier is true, it will find a computation path that demonstrates why
// the formula is true.  Note that the counterexample for a universally
// quantified formula is the witness for the dual existentially quantified
// formula."
//
// The Explainer implements that duality by rewriting the specification into
// existential normal form and recursing over its structure at concrete
// states, stitching the EX / EU / EG witness primitives into one linear
// trace.  The classic example: AG (req -> AF ack) false yields a fair path
// from an initial state to a state where req holds, followed by a fair
// lasso along which ack never holds.

#pragma once

#include <optional>
#include <string>

#include "core/checker.hpp"
#include "core/trace.hpp"
#include "core/witness.hpp"
#include "ctl/formula.hpp"

namespace symcex::core {

/// Verdict plus the demonstrating trace (when one exists).
struct Explanation {
  bool holds = false;                ///< does every initial state satisfy it?
  std::optional<Trace> trace;        ///< counterexample (false) / witness (true)
  std::string note;                  ///< one-line description of the trace
  /// State predicates the trace visits to demonstrate the formula (EU
  /// targets, EX successors).  Pass these to core::shorten() so loop
  /// cutting never removes the demonstrating states.
  std::vector<bdd::Bdd> obligations;
  /// Human-readable label per obligation, parallel to `obligations`
  /// (e.g. "reaches: ack" for an EU target).  The evidence renderers use
  /// these to annotate the demonstrating states in the DOT/HTML views, and
  /// the bundle exports them as named "visits" duties.
  std::vector<std::string> obligation_labels;
};

/// Checks a CTL specification and produces the demonstrating execution.
/// For a false universal formula the trace is a counterexample; for a true
/// existential formula it is a witness; when neither direction admits
/// single-path evidence (e.g. a true AG, a false EX) `trace` is empty and
/// `note` says why.
class Explainer {
 public:
  explicit Explainer(Checker& checker, const WitnessOptions& options = {});

  [[nodiscard]] Explanation explain(const ctl::Formula::Ptr& spec);
  [[nodiscard]] Explanation explain(const std::string& spec_text);

  /// Budgeted explain(): exhaustion comes back as CheckOutcome::kUnknown
  /// (with reason and budget spent) instead of a thrown
  /// guard::ResourceExhausted, and any partial trace prefix the witness
  /// generator salvaged rides along with trace_is_partial set.
  [[nodiscard]] CheckOutcome check(const ctl::Formula::Ptr& spec);
  [[nodiscard]] CheckOutcome check(const std::string& spec_text);

  /// The witness generator used underneath (for its stats).
  [[nodiscard]] WitnessGenerator& witnesses() { return generator_; }

 private:
  /// Extend `trace` (ending at a state satisfying ENF formula f) with
  /// evidence that f holds there.  Returns false when evidence stops being
  /// a single path (then the trace so far is still valid).
  bool show_true(const ctl::Formula::Ptr& f, Trace& trace);
  /// Extend `trace` (ending at a state violating ENF formula f) with
  /// evidence that f fails there.
  bool show_false(const ctl::Formula::Ptr& f, Trace& trace);

  [[nodiscard]] bdd::Bdd last_state(const Trace& trace) const;

  Checker& checker_;
  WitnessGenerator generator_;
  bool walked_temporal_ = false;
  std::vector<bdd::Bdd> obligations_;
  std::vector<std::string> obligation_labels_;  // parallel to obligations_
};

}  // namespace symcex::core
