// SymCeX -- build identity.
//
// One header-only source of truth for the version/build-info line every
// tool prints under --version, the serve daemon reports in its protocol
// handshake, and served evidence bundles record as their producer.  It is
// deliberately dependency-free (not even the diag library): the standalone
// symcex-verify tool links NO engine libraries, yet must report the same
// build identity as everything else.
//
// The format-version constants are duplicated here from their owning
// modules so this header stays standalone; static_asserts in
// src/persist/persist.cpp and src/evidence/evidence.cpp pin them to the
// real definitions, so a bump that forgets this header fails to compile.

#pragma once

#include <string>

namespace symcex::version {

/// Release version of the SymCeX tree (bumped per feature PR).
inline constexpr const char kVersion[] = "0.10.0";

/// persist::kSnapshotVersion (pinned by static_assert in persist.cpp).
inline constexpr unsigned kSnapshotFormatVersion = 1;
/// evidence::kBundleVersion (pinned by static_assert in evidence.cpp).
inline constexpr unsigned kEvidenceSchemaVersion = 1;
/// Wire-protocol version of the check-serving layer (src/serve): bumped on
/// any change that could make an existing client misread a frame.
inline constexpr unsigned kServeProtocolVersion = 1;

/// The compiler that produced this build, as reported by the front end.
[[nodiscard]] inline const char* compiler() {
#if defined(__VERSION__) && defined(__clang__)
  return "clang " __VERSION__;
#elif defined(__VERSION__)
  return "gcc " __VERSION__;
#else
  return "unknown-compiler";
#endif
}

/// The one-line build identity, e.g.
///   "symcex-verify 0.10.0 (snapshot-format 1, evidence-schema 1,
///    serve-protocol 1; gcc 13.2.0)"
/// Deterministic for a given build (no timestamps), so bundles that record
/// it stay byte-stable across emissions.
[[nodiscard]] inline std::string build_info(const std::string& tool) {
  return tool + " " + kVersion + " (snapshot-format " +
         std::to_string(kSnapshotFormatVersion) + ", evidence-schema " +
         std::to_string(kEvidenceSchemaVersion) + ", serve-protocol " +
         std::to_string(kServeProtocolVersion) + "; " + compiler() + ")";
}

}  // namespace symcex::version
