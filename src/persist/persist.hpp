// SymCeX -- crash-safe snapshot persistence.
//
// An aborted run used to lose everything: PR 3 made exhaustion
// recoverable in-process, but the reachability and fixpoint work died
// with the process.  This layer gives in-flight state a durable form --
// the prerequisite the ROADMAP's check-serving direction names ("a
// serialization format for BDDs/traces, which also unlocks checkpointing
// aborted runs").
//
// The format (version 1; DESIGN.md section 13 has the byte-level layout):
//
//   "SYMCEXSN" magic | u32 version | u32 flags
//   sections: { 4-byte tag | u64 payload length | payload | u64 FNV-1a }
//   terminated by an END section
//
// Everything is little-endian, explicitly packed.  The BDD DAG is
// encoded shared (one (var, lo, hi) triple per node, children-first,
// deterministic traversal numbering) together with the level map and
// pair-group metadata; a check snapshot adds the transition system's
// construction data (variable names, init/parts/fairness/labels, cluster
// threshold), the finalized cluster/schedule roots for verification,
// completed results (reachable set, fair states), and the in-flight
// fixpoint frontiers {Z, rings, iteration} plus the BudgetSpent at the
// interruption.
//
// Trust argument: a snapshot is self-produced state, not foreign input,
// but it is still parsed defensively -- magic/version negotiation,
// per-section checksums, truncation and bounds checks, and a post-load
// Manager::audit() gate mean a corrupt or torn file surfaces as a typed
// SnapshotError, never UB.  What checksums cannot prove is semantic
// fidelity; that comes from two independent directions: the loader
// re-derives the cluster schedules from the decoded parts and insists on
// handle equality with the stored roots (canonicity makes the comparison
// exact), and a resumed verdict's trace re-certifies against the raw
// relation under SYMCEX_CERTIFY exactly like an uninterrupted one.
//
// Writes are atomic: a temp file in the target directory, fsync-free but
// fully checksummed, renamed into place only after a clean close.  A
// crash mid-write leaves a *.tmp the loader never looks at; a torn or
// bit-flipped file fails its checksums.

#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "ctl/formula.hpp"
#include "guard/guard.hpp"
#include "ts/transition_system.hpp"

namespace symcex::persist {

/// Snapshot format version this build writes and accepts.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Typed, recoverable snapshot failure.  `check` is a short stable name
/// of the violated property -- "magic", "version", "checksum", "truncated",
/// "oversized-length", "duplicate-section", "unknown-section", "node-ref",
/// "node-order", "root", "meta", "group-map", "order-map", "audit",
/// "cluster-schedule", "io" -- so tests and tools can assert on the
/// failure mode, not the prose.
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(std::string check, const std::string& what)
      : std::runtime_error("snapshot: " + check + ": " + what),
        check_(std::move(check)) {}

  [[nodiscard]] const std::string& check() const { return check_; }

 private:
  std::string check_;
};

/// One interrupted fixpoint loop, keyed by the guard loop name
/// ("reachable", "eu", "eu_rings", "eg", "fair_eg") and its operands.
/// On resume the matching loop starts from `z` (and `rings`) instead of
/// its base case; because each saved iterate is one of the loop's own,
/// the continued computation is identical to the uninterrupted one.
struct Frontier {
  std::string loop;
  std::vector<bdd::Bdd> operands;
  bdd::Bdd z;
  std::vector<bdd::Bdd> rings;
  std::uint64_t iteration = 0;
};

/// Everything a check snapshot stores, in loaded (owning) form.  The
/// transition system is freshly rebuilt -- finalized, schedules verified
/// -- and all Bdd handles live in its manager.
struct CheckSnapshot {
  std::string model_name;
  std::string formula;      // display text (ctl::to_string of spec)
  ctl::Formula::Ptr spec;   // the exact AST, atoms by name (FORM section)
  std::uint8_t image_method = 0;  // core::ImageMethod as its underlying value
  bool use_care_set = false;
  bool coi = false;
  bool reorder = false;
  guard::BudgetSpent spent;  // consumption of the interrupted run
  std::unique_ptr<ts::TransitionSystem> system;
  bdd::Bdd reachable;  // completed reachable set, when the run got that far
  bdd::Bdd fair;       // completed fair-states set, likewise
  std::vector<Frontier> frontiers;
};

/// Save-side view of the same data: non-owning, assembled by
/// core::Checker at the moment of interruption.
struct CheckSnapshotInput {
  const ts::TransitionSystem* system = nullptr;
  std::string model_name;
  ctl::Formula::Ptr spec;
  std::uint8_t image_method = 0;
  bool use_care_set = false;
  bool coi = false;
  bool reorder = false;
  guard::BudgetSpent spent;
  bdd::Bdd reachable;  // null when not yet computed
  bdd::Bdd fair;       // null when not yet computed
  std::vector<Frontier> frontiers;
};

/// Write a check snapshot atomically (temp file + rename).  Throws
/// SnapshotError("io", ...) on any write failure; the destination is
/// never left half-written.
void save_check_snapshot(const std::string& path,
                         const CheckSnapshotInput& input);

/// Load a check snapshot: validates the container, rebuilds and
/// finalizes the transition system, decodes all roots, gates the result
/// on Manager::audit() and on cluster-schedule equality.  Throws
/// SnapshotError on any corruption or incompatibility.
[[nodiscard]] CheckSnapshot load_check_snapshot(const std::string& path);

/// Human-readable validation summary of any snapshot file (manager- or
/// check-kind): header, section table, counts.  Validates exactly like
/// the loaders; throws SnapshotError on a bad file.  Used by symcex-snap.
[[nodiscard]] std::string describe_snapshot(const std::string& path);

/// The directory checkpoints default to: SYMCEX_CHECKPOINT_DIR, or ""
/// (checkpointing disabled) when unset.
[[nodiscard]] std::string default_checkpoint_dir();

/// Deterministic checkpoint filename for a (model, formula) pair:
/// "<sanitized-model>-<fnv64(formula) hex>.sxsnap".  Sanitization is
/// lossy, so two distinct models can share a sanitized name; pass the
/// transition system's structural fingerprint (ts::TransitionSystem::
/// fingerprint()) to keep their checkpoints from clobbering each other
/// in one SYMCEX_CHECKPOINT_DIR:
/// "<sanitized-model>-<fnv64(fingerprint^formula) hex>.sxsnap".
[[nodiscard]] std::string checkpoint_basename(const std::string& model_name,
                                              const std::string& formula);
[[nodiscard]] std::string checkpoint_basename(const std::string& model_name,
                                              const std::string& formula,
                                              std::uint64_t ts_fingerprint);

/// FNV-1a 64-bit, the checksum the snapshot sections use.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t size);

}  // namespace symcex::persist
