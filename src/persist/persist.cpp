// Snapshot format implementation (see persist.hpp and DESIGN.md section 13).
//
// This translation unit also defines bdd::Manager::save_snapshot /
// load_snapshot: the format layer needs the manager's private node table
// and level maps, and -- like Manager::reorder() living in src/order --
// the member definitions live with the policy that owns them.  All
// private access funnels through persist::ManagerAccess (the friend
// bdd.hpp declares).

#include "persist/persist.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "guard/fault.hpp"
#include "version.hpp"

namespace symcex::persist {

// version.hpp duplicates the format version so the zero-dependency tools
// can report it; this pin makes a bump that forgets the copy fail here.
static_assert(version::kSnapshotFormatVersion == kSnapshotVersion,
              "src/version.hpp kSnapshotFormatVersion is out of date");

// ---------------------------------------------------------------------------
// Byte packing (explicit little-endian; no struct punning)
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'S', 'Y', 'M', 'C', 'E', 'X', 'S', 'N'};
constexpr const char* kProducer = "symcex-persist";
constexpr std::uint32_t kNoChild = 0xFFFFFFFFu;

// Sanity ceiling on any single section: snapshots are big but not
// unbounded, and a corrupted length field must not drive a multi-GB
// allocation before the checksum can catch it.
constexpr std::uint64_t kMaxSectionBytes = 1ull << 32;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked reader over one section payload.  Every overrun is a
/// typed "truncated" error naming the section -- a bit-flipped length
/// inside a payload must not walk off the end.
class Cursor {
 public:
  Cursor(const std::string& buf, std::string tag)
      : buf_(buf), tag_(std::move(tag)) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  void expect_end() const {
    if (pos_ != buf_.size()) {
      throw SnapshotError("truncated", "section " + tag_ + " has " +
                                           std::to_string(buf_.size() - pos_) +
                                           " trailing bytes");
    }
  }

 private:
  void need(std::size_t n) {
    if (buf_.size() - pos_ < n) {
      throw SnapshotError("truncated",
                          "section " + tag_ + " payload ends early");
    }
  }

  const std::string& buf_;
  std::string tag_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Container: header + checksummed sections + END trailer
// ---------------------------------------------------------------------------

namespace {

struct Section {
  std::string tag;  // exactly 4 characters
  std::string payload;
};

const std::unordered_set<std::string>& known_tags() {
  static const std::unordered_set<std::string> tags = {
      "META", "VARS", "ORDR", "NODE", "ROOT", "FORM", "FRNT", "END "};
  return tags;
}

/// Serialize the container.  Each stream write goes through the
/// "persist-write" fault site; an injected short write persists a prefix
/// and throws, simulating a torn write / full disk.
void write_container(std::ostream& os, const std::vector<Section>& sections) {
  const auto sink = [&os](const std::string& bytes) {
    if (guard::fault_fire(guard::FaultKind::kIoShortWrite, "persist-write")) {
      os.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() / 2));
      os.flush();
      throw SnapshotError("io", "injected short write");
    }
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os) throw SnapshotError("io", "stream write failed");
  };

  std::string header(kMagic, sizeof(kMagic));
  put_u32(header, kSnapshotVersion);
  put_u32(header, 0);  // flags, reserved
  sink(header);

  const auto write_section = [&](const std::string& tag,
                                 const std::string& payload) {
    std::string bytes = tag;
    put_u64(bytes, payload.size());
    bytes.append(payload);
    put_u64(bytes, fnv1a64(payload.data(), payload.size()));
    sink(bytes);
  };
  for (const Section& s : sections) write_section(s.tag, s.payload);
  write_section("END ", "");
}

/// Parse and validate a whole container image.  Every corruption mode
/// has a stable check name; nothing is trusted before its checksum.
std::vector<Section> read_container(const std::string& bytes) {
  std::size_t pos = 0;
  const auto remaining = [&] { return bytes.size() - pos; };

  if (remaining() < sizeof(kMagic) + 8) {
    throw SnapshotError("truncated", "file shorter than the header");
  }
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError("magic", "not a symcex snapshot");
  }
  pos = sizeof(kMagic);
  const auto read_u32 = [&] {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos++]))
           << (8 * i);
    }
    return v;
  };
  const auto read_u64 = [&] {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[pos++]))
           << (8 * i);
    }
    return v;
  };
  const std::uint32_t version = read_u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError(
        "version", "snapshot version " + std::to_string(version) +
                       " (this build reads version " +
                       std::to_string(kSnapshotVersion) +
                       "; any format change bumps the version)");
  }
  (void)read_u32();  // flags, reserved

  std::vector<Section> sections;
  std::unordered_set<std::string> seen;
  bool ended = false;
  while (!ended) {
    if (remaining() < 4 + 8) {
      throw SnapshotError("truncated", "file ends inside a section header "
                                       "(no END trailer: torn write?)");
    }
    Section s;
    s.tag = bytes.substr(pos, 4);
    pos += 4;
    if (!known_tags().contains(s.tag)) {
      throw SnapshotError("unknown-section", "unrecognized tag '" + s.tag +
                                                 "' (same-version files "
                                                 "never add sections)");
    }
    const std::uint64_t len = read_u64();
    if (len > kMaxSectionBytes) {
      throw SnapshotError("oversized-length",
                          "section " + s.tag + " claims " +
                              std::to_string(len) + " bytes");
    }
    if (len + 8 > remaining()) {
      throw SnapshotError("oversized-length",
                          "section " + s.tag + " overruns the file");
    }
    s.payload = bytes.substr(pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    const std::uint64_t stored = read_u64();
    const std::uint64_t actual =
        fnv1a64(s.payload.data(), s.payload.size());
    if (stored != actual) {
      throw SnapshotError("checksum",
                          "section " + s.tag + " checksum mismatch");
    }
    if (!seen.insert(s.tag).second) {
      throw SnapshotError("duplicate-section",
                          "section " + s.tag + " appears twice");
    }
    if (s.tag == "END ") {
      ended = true;
    } else {
      sections.push_back(std::move(s));
    }
  }
  if (remaining() != 0) {
    throw SnapshotError("truncated",
                        "trailing bytes after the END section");
  }
  return sections;
}

std::string read_file(const std::string& path) {
  if (guard::fault_fire(guard::FaultKind::kIoFail, "persist-read")) {
    throw SnapshotError("io", "injected read failure on '" + path + "'");
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw SnapshotError("io", "cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) {
    throw SnapshotError("io", "read failed on '" + path + "'");
  }
  return buf.str();
}

void write_file_atomic(const std::string& path,
                       const std::vector<Section>& sections) {
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw SnapshotError("io", "cannot create '" + tmp + "'");
    }
    write_container(os, sections);
    os.flush();
    if (!os) {
      throw SnapshotError("io", "flush failed on '" + tmp + "'");
    }
    os.close();
    if (os.fail()) {
      throw SnapshotError("io", "close failed on '" + tmp + "'");
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("io", "cannot rename into '" + path + "'");
  }
}

const Section* find_section(const std::vector<Section>& sections,
                            const std::string& tag) {
  for (const Section& s : sections) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

const Section& require_section(const std::vector<Section>& sections,
                               const std::string& tag) {
  const Section* s = find_section(sections, tag);
  if (s == nullptr) {
    throw SnapshotError("truncated", "required section " + tag + " missing");
  }
  return *s;
}

}  // namespace

// ---------------------------------------------------------------------------
// ManagerAccess: the one funnel for private manager state
// ---------------------------------------------------------------------------

struct ManagerAccess {
  using Manager = bdd::Manager;
  using Bdd = bdd::Bdd;

  struct NodeTriple {
    std::uint32_t var;
    std::uint32_t lo;
    std::uint32_t hi;
  };

  struct EncodedDag {
    std::vector<NodeTriple> triples;       // children-first
    std::vector<std::uint32_t> root_ids;   // per input root
  };

  static std::uint32_t idx(const Bdd& b) { return b.idx_; }
  static Bdd wrap(Manager& m, std::uint32_t i) { return m.wrap(i); }

  /// Shared-DAG encoding: ids 0/1 are the terminals, interior nodes get
  /// 2.. in first-completion (postorder) DFS order over the roots.  The
  /// numbering is a pure function of the root functions and their order,
  /// so identical state produces identical bytes.
  static EncodedDag encode_dag(const Manager& m,
                               const std::vector<Bdd>& roots) {
    EncodedDag out;
    std::unordered_map<std::uint32_t, std::uint32_t> id;
    id.emplace(0u, 0u);
    id.emplace(1u, 1u);
    std::vector<std::pair<std::uint32_t, bool>> stack;  // (node, expanded)
    for (const Bdd& root : roots) {
      stack.emplace_back(idx(root), false);
      while (!stack.empty()) {
        auto& [n, expanded] = stack.back();
        if (id.contains(n)) {
          stack.pop_back();
          continue;
        }
        const auto& nd = m.nodes_[n];
        if (!expanded) {
          expanded = true;
          stack.emplace_back(nd.hi, false);
          stack.emplace_back(nd.lo, false);
          continue;
        }
        const auto new_id =
            static_cast<std::uint32_t>(2 + out.triples.size());
        out.triples.push_back({nd.var, id.at(nd.lo), id.at(nd.hi)});
        id.emplace(n, new_id);
        stack.pop_back();
      }
      out.root_ids.push_back(id.at(idx(root)));
    }
    return out;
  }

  /// Install the saved order + groups on a manager that has variables but
  /// no interior nodes yet (nothing to relocate).
  static void install_order(Manager& m,
                            const std::vector<std::uint32_t>& var2level,
                            const std::vector<std::uint32_t>& group_of) {
    const std::size_t n = m.num_vars_;
    if (var2level.size() != n || group_of.size() != n) {
      throw SnapshotError("order-map",
                          "level/group maps sized for " +
                              std::to_string(var2level.size()) +
                              " variables, manager has " + std::to_string(n));
    }
    if (m.live_nodes_ != 2) {
      throw SnapshotError("order-map",
                          "order install on a manager with interior nodes");
    }
    std::vector<std::uint32_t> level2var(n, kNoChild);
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t lvl = var2level[v];
      if (lvl >= n || level2var[lvl] != kNoChild) {
        throw SnapshotError("order-map", "var2level is not a bijection");
      }
      level2var[lvl] = v;
      if (group_of[v] >= n) {
        throw SnapshotError("group-map", "group id out of range");
      }
    }
    m.var2level_ = var2level;
    m.level2var_ = std::move(level2var);
    m.group_of_ = group_of;
    std::size_t displaced = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (var2level[v] != v) ++displaced;
    }
    m.displaced_vars_ = displaced;
  }

  /// Decode a children-first triple list through mk(); returns the node
  /// index for every snapshot id.  Validation: child refs must point
  /// backward, variables must exist, and each node's level must sit
  /// strictly above its children's under the installed order (mk would
  /// otherwise build an order-violating node the audit gate rejects with
  /// a less precise message).
  static std::vector<std::uint32_t> decode_dag(
      Manager& m, const std::vector<NodeTriple>& triples) {
    std::vector<std::uint32_t> node_of(2 + triples.size());
    node_of[0] = 0;
    node_of[1] = 1;
    const auto level_of_id = [&](std::uint32_t id) -> std::uint32_t {
      if (id < 2) return Manager::kTermVar;  // terminals sit below all vars
      return m.var2level_[triples[id - 2].var];
    };
    for (std::size_t i = 0; i < triples.size(); ++i) {
      const NodeTriple& t = triples[i];
      const auto self = static_cast<std::uint32_t>(2 + i);
      if (t.var >= m.num_vars_) {
        throw SnapshotError("node-ref", "node " + std::to_string(self) +
                                            " has unknown variable " +
                                            std::to_string(t.var));
      }
      if (t.lo >= self || t.hi >= self) {
        throw SnapshotError("node-ref",
                            "node " + std::to_string(self) +
                                " references a forward or self id");
      }
      if (t.lo == t.hi) {
        throw SnapshotError("node-ref", "node " + std::to_string(self) +
                                            " is redundant (lo == hi)");
      }
      const std::uint32_t lvl = m.var2level_[t.var];
      if (lvl >= level_of_id(t.lo) || lvl >= level_of_id(t.hi)) {
        throw SnapshotError("node-order",
                            "node " + std::to_string(self) +
                                " violates the variable order");
      }
      node_of[self] = m.mk(t.var, node_of[t.lo], node_of[t.hi]);
    }
    return node_of;
  }

  static std::size_t num_vars(const Manager& m) { return m.num_vars_; }
  static const std::vector<std::uint32_t>& var2level(const Manager& m) {
    return m.var2level_;
  }
  static const std::vector<std::uint32_t>& group_of(const Manager& m) {
    return m.group_of_;
  }
};

// ---------------------------------------------------------------------------
// Section encoders/decoders shared by manager- and check-kind snapshots
// ---------------------------------------------------------------------------

namespace {

using bdd::Bdd;
using bdd::Manager;

enum : std::uint8_t { kKindManager = 0, kKindCheck = 1 };

void append_dag_sections(const Manager& mgr, const std::vector<Bdd>& roots,
                         const std::vector<std::string>& names,
                         std::vector<Section>& out) {
  const std::size_t n = ManagerAccess::num_vars(mgr);

  Section ordr{"ORDR", {}};
  put_u32(ordr.payload, static_cast<std::uint32_t>(n));
  for (std::uint32_t v = 0; v < n; ++v) {
    put_u32(ordr.payload, ManagerAccess::var2level(mgr)[v]);
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    put_u32(ordr.payload, ManagerAccess::group_of(mgr)[v]);
  }
  out.push_back(std::move(ordr));

  const ManagerAccess::EncodedDag dag = ManagerAccess::encode_dag(mgr, roots);
  Section node{"NODE", {}};
  put_u64(node.payload, dag.triples.size());
  for (const auto& t : dag.triples) {
    put_u32(node.payload, t.var);
    put_u32(node.payload, t.lo);
    put_u32(node.payload, t.hi);
  }
  out.push_back(std::move(node));

  Section root{"ROOT", {}};
  put_u32(root.payload, static_cast<std::uint32_t>(roots.size()));
  for (std::size_t i = 0; i < roots.size(); ++i) {
    put_str(root.payload,
            i < names.size() ? names[i] : "root:" + std::to_string(i));
    put_u32(root.payload, dag.root_ids[i]);
  }
  out.push_back(std::move(root));
}

struct DecodedDag {
  std::vector<Bdd> roots;
  std::vector<std::string> names;
};

/// Decode ORDR + NODE + ROOT into `mgr` (fresh, variables declared).
DecodedDag decode_dag_sections(Manager& mgr,
                               const std::vector<Section>& sections) {
  Cursor ordr(require_section(sections, "ORDR").payload, "ORDR");
  const std::uint32_t n = ordr.u32();
  if (n != ManagerAccess::num_vars(mgr)) {
    throw SnapshotError("order-map",
                        "snapshot has " + std::to_string(n) +
                            " BDD variables, manager has " +
                            std::to_string(ManagerAccess::num_vars(mgr)));
  }
  std::vector<std::uint32_t> var2level(n);
  std::vector<std::uint32_t> group_of(n);
  for (std::uint32_t v = 0; v < n; ++v) var2level[v] = ordr.u32();
  for (std::uint32_t v = 0; v < n; ++v) group_of[v] = ordr.u32();
  ordr.expect_end();
  ManagerAccess::install_order(mgr, var2level, group_of);

  Cursor node(require_section(sections, "NODE").payload, "NODE");
  const std::uint64_t count = node.u64();
  // Each triple is 12 payload bytes; an inflated count dies here, not in
  // a giant allocation.
  std::vector<ManagerAccess::NodeTriple> triples;
  triples.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      count, kMaxSectionBytes / 12)));
  for (std::uint64_t i = 0; i < count; ++i) {
    ManagerAccess::NodeTriple t{};
    t.var = node.u32();
    t.lo = node.u32();
    t.hi = node.u32();
    triples.push_back(t);
  }
  node.expect_end();
  const std::vector<std::uint32_t> node_of =
      ManagerAccess::decode_dag(mgr, triples);

  Cursor root(require_section(sections, "ROOT").payload, "ROOT");
  const std::uint32_t root_count = root.u32();
  DecodedDag out;
  for (std::uint32_t i = 0; i < root_count; ++i) {
    std::string name = root.str();
    const std::uint32_t id = root.u32();
    if (id >= node_of.size()) {
      throw SnapshotError("root", "root '" + name + "' references id " +
                                      std::to_string(id) + " of " +
                                      std::to_string(node_of.size()));
    }
    out.names.push_back(std::move(name));
    out.roots.push_back(ManagerAccess::wrap(mgr, node_of[id]));
  }
  root.expect_end();

  // The audit gate: a parseable-but-inconsistent table (or a decode bug)
  // is a typed error, never a manager silently running on corrupt state.
  const std::string report = mgr.audit_check();
  if (!report.empty()) {
    throw SnapshotError("audit", report);
  }
  return out;
}

// -- formula AST <-> FORM section -------------------------------------------

void encode_formula(const ctl::Formula::Ptr& f,
                    std::unordered_map<const ctl::Formula*, std::uint32_t>&
                        ids,
                    std::string& nodes, std::uint32_t& count) {
  if (f == nullptr || ids.contains(f.get())) return;
  encode_formula(f->lhs(), ids, nodes, count);
  encode_formula(f->rhs(), ids, nodes, count);
  put_u8(nodes, static_cast<std::uint8_t>(f->kind()));
  put_str(nodes, f->name());
  put_u32(nodes, f->lhs() ? ids.at(f->lhs().get()) : kNoChild);
  put_u32(nodes, f->rhs() ? ids.at(f->rhs().get()) : kNoChild);
  ids.emplace(f.get(), count++);
}

Section make_form_section(const ctl::Formula::Ptr& spec) {
  Section form{"FORM", {}};
  std::unordered_map<const ctl::Formula*, std::uint32_t> ids;
  std::string nodes;
  std::uint32_t count = 0;
  encode_formula(spec, ids, nodes, count);
  put_u32(form.payload, count);
  form.payload.append(nodes);
  return form;
}

ctl::Formula::Ptr decode_form_section(const Section& form) {
  Cursor cur(form.payload, "FORM");
  const std::uint32_t count = cur.u32();
  if (count == 0) {
    throw SnapshotError("meta", "FORM section is empty");
  }
  std::vector<ctl::Formula::Ptr> built;
  built.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto kind = static_cast<ctl::Kind>(cur.u8());
    std::string name = cur.str();
    const std::uint32_t lhs_id = cur.u32();
    const std::uint32_t rhs_id = cur.u32();
    const auto child = [&](std::uint32_t id) -> ctl::Formula::Ptr {
      if (id == kNoChild) return nullptr;
      if (id >= i) {
        throw SnapshotError("meta", "FORM node references a forward id");
      }
      return built[id];
    };
    switch (kind) {
      case ctl::Kind::kTrue:
        built.push_back(ctl::Formula::make_true());
        break;
      case ctl::Kind::kFalse:
        built.push_back(ctl::Formula::make_false());
        break;
      case ctl::Kind::kAtom:
        built.push_back(ctl::Formula::atom(std::move(name)));
        break;
      default: {
        const ctl::Formula::Ptr lhs = child(lhs_id);
        const ctl::Formula::Ptr rhs = child(rhs_id);
        if (lhs == nullptr) {
          throw SnapshotError("meta", "FORM operator node has no operand");
        }
        built.push_back(ctl::Formula::rebuild(kind, lhs, rhs));
        break;
      }
    }
  }
  cur.expect_end();
  return built.back();
}

void put_spent(std::string& out, const guard::BudgetSpent& s) {
  put_u64(out, s.live_nodes);
  put_u64(out, s.peak_nodes);
  put_u64(out, s.memory_bytes);
  put_u64(out, s.elapsed_ms);
  put_u64(out, s.iterations);
  put_u64(out, s.depth);
  put_u64(out, s.soft_gc_runs);
  put_u64(out, s.reorder_swaps);
}

guard::BudgetSpent get_spent(Cursor& cur) {
  guard::BudgetSpent s;
  s.live_nodes = static_cast<std::size_t>(cur.u64());
  s.peak_nodes = static_cast<std::size_t>(cur.u64());
  s.memory_bytes = static_cast<std::size_t>(cur.u64());
  s.elapsed_ms = cur.u64();
  s.iterations = static_cast<std::size_t>(cur.u64());
  s.depth = static_cast<std::size_t>(cur.u64());
  s.soft_gc_runs = static_cast<std::size_t>(cur.u64());
  s.reorder_swaps = static_cast<std::size_t>(cur.u64());
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Manager-kind snapshots (bdd::Manager member definitions)
// ---------------------------------------------------------------------------

}  // namespace symcex::persist

namespace symcex::bdd {

void Manager::save_snapshot(std::ostream& os, const std::vector<Bdd>& roots,
                            const std::vector<std::string>& names) const {
  namespace ps = symcex::persist;
  for (const Bdd& root : roots) {
    if (root.is_null() || root.manager() != this) {
      throw std::invalid_argument(
          "Manager::save_snapshot: null or foreign root");
    }
  }
  std::vector<ps::Section> sections;
  ps::Section meta{"META", {}};
  ps::put_u8(meta.payload, ps::kKindManager);
  ps::put_str(meta.payload, ps::kProducer);
  ps::put_u32(meta.payload, static_cast<std::uint32_t>(num_vars_));
  sections.push_back(std::move(meta));
  ps::append_dag_sections(*this, roots, names, sections);
  ps::write_container(os, sections);
}

Manager::LoadedSnapshot Manager::load_snapshot(std::istream& is) {
  namespace ps = symcex::persist;
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) {
    throw ps::SnapshotError("io", "stream read failed");
  }
  const std::vector<ps::Section> sections = ps::read_container(buf.str());
  ps::Cursor meta(ps::require_section(sections, "META").payload, "META");
  if (meta.u8() != ps::kKindManager) {
    throw ps::SnapshotError("meta",
                            "not a manager snapshot (use the check loader)");
  }
  (void)meta.str();  // producer, informational
  const std::uint32_t n = meta.u32();
  meta.expect_end();
  if (n != num_vars_) {
    throw ps::SnapshotError("meta",
                            "snapshot has " + std::to_string(n) +
                                " BDD variables, this manager has " +
                                std::to_string(num_vars_));
  }
  ps::DecodedDag dag = ps::decode_dag_sections(*this, sections);
  LoadedSnapshot out;
  out.roots = std::move(dag.roots);
  out.names = std::move(dag.names);
  return out;
}

}  // namespace symcex::bdd

namespace symcex::persist {

// ---------------------------------------------------------------------------
// Check-kind snapshots
// ---------------------------------------------------------------------------

namespace {

std::string sanitize_model_name(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "check";
  return out;
}

}  // namespace

std::string default_checkpoint_dir() {
  const char* dir = std::getenv("SYMCEX_CHECKPOINT_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

std::string checkpoint_basename(const std::string& model_name,
                                const std::string& formula) {
  const std::uint64_t h = fnv1a64(formula.data(), formula.size());
  std::ostringstream os;
  os << sanitize_model_name(model_name) << "-" << std::hex << h << ".sxsnap";
  return os.str();
}

std::string checkpoint_basename(const std::string& model_name,
                                const std::string& formula,
                                std::uint64_t ts_fingerprint) {
  // Fold the structural fingerprint into the hashed half of the name, so
  // two models whose names sanitize identically (e.g. "net/a" and
  // "net?a") still land in distinct files.  Hash the fingerprint's bytes
  // before the formula text rather than XORing afterwards: XOR of two
  // hashes could cancel structured differences.
  unsigned char fp[8];
  for (int i = 0; i < 8; ++i) {
    fp[i] = static_cast<unsigned char>(ts_fingerprint >> (8 * i));
  }
  std::uint64_t h = fnv1a64(fp, sizeof fp);
  for (const unsigned char c : formula) {
    h ^= c;
    h *= 0x00000100000001b3ull;
  }
  std::ostringstream os;
  os << sanitize_model_name(model_name) << "-" << std::hex << h << ".sxsnap";
  return os.str();
}

void save_check_snapshot(const std::string& path,
                         const CheckSnapshotInput& input) {
  if (input.system == nullptr || !input.system->finalized()) {
    throw std::invalid_argument(
        "persist::save_check_snapshot: null or unfinalized system");
  }
  const ts::TransitionSystem& sys = *input.system;
  const std::string formula_text = ctl::to_string(input.spec);

  // Named roots, in a deterministic order.
  std::vector<Bdd> roots;
  std::vector<std::string> names;
  const auto add_root = [&](std::string name, const Bdd& b) {
    names.push_back(std::move(name));
    roots.push_back(b);
  };
  add_root("init", sys.init());
  for (std::size_t i = 0; i < sys.trans_parts().size(); ++i) {
    add_root("part:" + std::to_string(i), sys.trans_parts()[i]);
  }
  for (std::size_t i = 0; i < sys.fairness().size(); ++i) {
    add_root("fair:" + std::to_string(i), sys.fairness()[i]);
  }
  {
    std::vector<std::string> label_names;
    for (const auto& [name, set] : sys.labels()) label_names.push_back(name);
    std::sort(label_names.begin(), label_names.end());
    for (const std::string& name : label_names) {
      add_root("label:" + name, *sys.label(name));
    }
  }
  // Finalized derived state, stored for load-time verification only: the
  // loader re-runs finalize() and insists the recomputed clusters and
  // early-quantification schedules equal these (canonicity makes the
  // comparison exact handle equality).
  for (std::size_t i = 0; i < sys.trans_clusters().size(); ++i) {
    add_root("cluster:" + std::to_string(i), sys.trans_clusters()[i]);
  }
  for (std::size_t i = 0; i < sys.image_schedule().size(); ++i) {
    add_root("sched:img:" + std::to_string(i), sys.image_schedule()[i]);
  }
  for (std::size_t i = 0; i < sys.preimage_schedule().size(); ++i) {
    add_root("sched:pre:" + std::to_string(i), sys.preimage_schedule()[i]);
  }
  if (!input.reachable.is_null()) add_root("reachable", input.reachable);
  if (!input.fair.is_null()) add_root("fairstates", input.fair);
  for (std::size_t k = 0; k < input.frontiers.size(); ++k) {
    const Frontier& f = input.frontiers[k];
    const std::string prefix = "f" + std::to_string(k);
    if (f.z.is_null()) {
      throw std::invalid_argument(
          "persist::save_check_snapshot: frontier with null Z");
    }
    add_root(prefix + ":z", f.z);
    for (std::size_t j = 0; j < f.operands.size(); ++j) {
      add_root(prefix + ":op:" + std::to_string(j), f.operands[j]);
    }
    for (std::size_t j = 0; j < f.rings.size(); ++j) {
      add_root(prefix + ":ring:" + std::to_string(j), f.rings[j]);
    }
  }

  std::vector<Section> sections;
  Section meta{"META", {}};
  put_u8(meta.payload, kKindCheck);
  put_str(meta.payload, kProducer);
  put_str(meta.payload, input.model_name);
  put_str(meta.payload, formula_text);
  put_u8(meta.payload, input.image_method);
  put_u8(meta.payload, input.use_care_set ? 1 : 0);
  put_u8(meta.payload, input.coi ? 1 : 0);
  put_u8(meta.payload, input.reorder ? 1 : 0);
  put_u64(meta.payload, sys.cluster_threshold());
  put_spent(meta.payload, input.spent);
  sections.push_back(std::move(meta));

  Section vars{"VARS", {}};
  put_u32(vars.payload,
          static_cast<std::uint32_t>(sys.var_names().size()));
  for (const std::string& name : sys.var_names()) {
    put_str(vars.payload, name);
  }
  sections.push_back(std::move(vars));

  append_dag_sections(sys.manager(), roots, names, sections);

  sections.push_back(make_form_section(input.spec));

  Section frnt{"FRNT", {}};
  put_u32(frnt.payload, static_cast<std::uint32_t>(input.frontiers.size()));
  for (const Frontier& f : input.frontiers) {
    put_str(frnt.payload, f.loop);
    put_u64(frnt.payload, f.iteration);
    put_u32(frnt.payload, static_cast<std::uint32_t>(f.operands.size()));
    put_u32(frnt.payload, static_cast<std::uint32_t>(f.rings.size()));
  }
  sections.push_back(std::move(frnt));

  write_file_atomic(path, sections);
}

CheckSnapshot load_check_snapshot(const std::string& path) {
  const std::vector<Section> sections = read_container(read_file(path));

  Cursor meta(require_section(sections, "META").payload, "META");
  if (meta.u8() != kKindCheck) {
    throw SnapshotError("meta", "'" + path + "' is not a check snapshot");
  }
  (void)meta.str();  // producer, informational
  CheckSnapshot out;
  out.model_name = meta.str();
  out.formula = meta.str();
  out.image_method = meta.u8();
  out.use_care_set = meta.u8() != 0;
  out.coi = meta.u8() != 0;
  out.reorder = meta.u8() != 0;
  const auto cluster_threshold = static_cast<std::size_t>(meta.u64());
  out.spent = get_spent(meta);
  meta.expect_end();

  Cursor vars(require_section(sections, "VARS").payload, "VARS");
  const std::uint32_t num_state_vars = vars.u32();
  std::vector<std::string> names;
  names.reserve(num_state_vars);
  for (std::uint32_t i = 0; i < num_state_vars; ++i) {
    names.push_back(vars.str());
  }
  vars.expect_end();

  // Rebuild the transition system: declare variables (this creates the
  // interleaved rails and pair groups), install the saved order while the
  // manager is still node-free, decode the DAG, then construct and
  // finalize.
  out.system = std::make_unique<ts::TransitionSystem>();
  ts::TransitionSystem& sys = *out.system;
  // The manager sampled SYMCEX_REORDER at construction; a load-time sift
  // (finalize() triggers one when auto-reorder is on) would be harmless
  // function-wise but pointless work against the snapshot's own order.
  // The resume path re-enables reordering from the snapshot's flag.
  sys.manager().set_auto_reorder(false);
  sys.set_cluster_threshold(cluster_threshold);
  for (const std::string& name : names) {
    try {
      sys.add_var(name);
    } catch (const std::invalid_argument& e) {
      throw SnapshotError("meta", e.what());
    }
  }
  const DecodedDag dag = decode_dag_sections(sys.manager(), sections);
  std::map<std::string, Bdd> by_name;
  for (std::size_t i = 0; i < dag.roots.size(); ++i) {
    if (!by_name.emplace(dag.names[i], dag.roots[i]).second) {
      throw SnapshotError("root", "duplicate root '" + dag.names[i] + "'");
    }
  }
  const auto root = [&](const std::string& name) -> const Bdd& {
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw SnapshotError("root", "missing root '" + name + "'");
    }
    return it->second;
  };
  const auto indexed = [&](const std::string& prefix) {
    std::vector<Bdd> out_vec;
    for (std::size_t i = 0;; ++i) {
      const auto it = by_name.find(prefix + std::to_string(i));
      if (it == by_name.end()) break;
      out_vec.push_back(it->second);
    }
    return out_vec;
  };

  sys.set_init(root("init"));
  for (const Bdd& part : indexed("part:")) sys.add_trans(part);
  for (const Bdd& fair : indexed("fair:")) sys.add_fairness(fair);
  for (const auto& [name, set] : by_name) {
    if (name.starts_with("label:")) {
      sys.add_label(name.substr(6), set);
    }
  }
  try {
    sys.finalize();
  } catch (const std::exception& e) {
    throw SnapshotError("meta", std::string("finalize failed: ") + e.what());
  }

  // Cluster-schedule verification: the stored derived state must equal
  // what finalize() just recomputed from the decoded parts.  A snapshot
  // that passes its checksums but disagrees here was written by a
  // different clustering configuration (or is semantically corrupt) --
  // resuming it would silently change the sweep order.
  const auto verify_equal = [&](const char* what,
                                const std::vector<Bdd>& stored,
                                const std::vector<Bdd>& fresh) {
    if (stored.size() != fresh.size() ||
        !std::equal(stored.begin(), stored.end(), fresh.begin())) {
      throw SnapshotError("cluster-schedule",
                          std::string(what) +
                              " disagree with the stored snapshot");
    }
  };
  verify_equal("recomputed clusters", indexed("cluster:"),
               sys.trans_clusters());
  verify_equal("recomputed image schedules", indexed("sched:img:"),
               sys.image_schedule());
  verify_equal("recomputed preimage schedules", indexed("sched:pre:"),
               sys.preimage_schedule());

  if (by_name.contains("reachable")) out.reachable = root("reachable");
  if (by_name.contains("fairstates")) out.fair = root("fairstates");

  out.spec = decode_form_section(require_section(sections, "FORM"));
  if (ctl::to_string(out.spec) != out.formula) {
    throw SnapshotError("meta",
                        "FORM section disagrees with the META formula text");
  }

  Cursor frnt(require_section(sections, "FRNT").payload, "FRNT");
  const std::uint32_t frontier_count = frnt.u32();
  for (std::uint32_t k = 0; k < frontier_count; ++k) {
    Frontier f;
    f.loop = frnt.str();
    f.iteration = frnt.u64();
    const std::uint32_t n_ops = frnt.u32();
    const std::uint32_t n_rings = frnt.u32();
    const std::string prefix = "f" + std::to_string(k);
    f.z = root(prefix + ":z");
    for (std::uint32_t j = 0; j < n_ops; ++j) {
      f.operands.push_back(root(prefix + ":op:" + std::to_string(j)));
    }
    for (std::uint32_t j = 0; j < n_rings; ++j) {
      f.rings.push_back(root(prefix + ":ring:" + std::to_string(j)));
    }
    out.frontiers.push_back(std::move(f));
  }
  frnt.expect_end();

  return out;
}

std::string describe_snapshot(const std::string& path) {
  const std::string bytes = read_file(path);
  const std::vector<Section> sections = read_container(bytes);
  std::ostringstream os;
  os << path << ": symcex snapshot v" << kSnapshotVersion << ", "
     << bytes.size() << " bytes\n";
  for (const Section& s : sections) {
    os << "  " << s.tag << "  " << s.payload.size() << " bytes  (fnv "
       << std::hex << fnv1a64(s.payload.data(), s.payload.size()) << std::dec
       << ")\n";
  }
  Cursor meta(require_section(sections, "META").payload, "META");
  const std::uint8_t kind = meta.u8();
  os << "  kind: " << (kind == kKindCheck ? "check" : "manager") << "\n";
  if (kind == kKindCheck) {
    (void)meta.str();  // producer
    os << "  model: " << meta.str() << "\n";
    os << "  formula: " << meta.str() << "\n";
    const std::uint8_t image_method = meta.u8();
    const std::uint8_t care = meta.u8();
    const std::uint8_t coi = meta.u8();
    const std::uint8_t reorder = meta.u8();
    os << "  options: image_method=" << static_cast<int>(image_method)
       << " care=" << static_cast<int>(care)
       << " coi=" << static_cast<int>(coi)
       << " reorder=" << static_cast<int>(reorder)
       << " cluster_threshold=" << meta.u64() << "\n";
    os << "  spent: " << get_spent(meta).to_string() << "\n";
    Cursor frnt(require_section(sections, "FRNT").payload, "FRNT");
    os << "  frontiers: " << frnt.u32() << "\n";
  }
  return os.str();
}

}  // namespace symcex::persist
