// SymCeX -- a mini-SMV front end.
//
// A small model-description language in the style of the SMV system the
// paper's algorithms were built into [11]: boolean / enumerated / ranged
// state variables, parallel assignments with nondeterministic choice,
// direct TRANS/INIT/INVAR constraints, DEFINE macros, FAIRNESS constraints
// and CTL SPECs, compiled onto the symbolic TransitionSystem layer.
//
//   MODULE main
//   VAR
//     st   : {idle, busy, done};
//     req  : boolean;
//     cnt  : 0..7;
//   ASSIGN
//     init(st)  := idle;
//     next(st)  := case
//         st = idle & req : busy;
//         st = busy       : {busy, done};   -- nondeterministic choice
//         TRUE            : idle;
//       esac;
//     next(cnt) := (cnt + 1) mod 8;
//   DEFINE
//     active := st != idle;
//   INVAR  !(st = done & req)
//   FAIRNESS  st = idle
//   SPEC AG (req -> AF st = done)
//
// Scope notes (documented substitutions vs full SMV): a single MODULE main
// (no module hierarchy / process keyword), integer arithmetic + - * / mod
// over bounded domains, and CTL specs.  Unassigned variables evolve
// nondeterministically within their domain.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ctl/formula.hpp"
#include "ts/transition_system.hpp"

namespace symcex::smv {

/// Parse or type error, with a 1-based source line.
class SmvError : public std::runtime_error {
 public:
  SmvError(const std::string& message, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// One value of an SMV variable, for trace decoding.
struct SmvValue {
  enum class Tag { kBool, kInt, kSymbol };
  Tag tag = Tag::kBool;
  bool b = false;
  std::int64_t i = 0;
  std::string symbol;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SmvValue& a, const SmvValue& b) {
    if (a.tag != b.tag) return false;
    switch (a.tag) {
      case Tag::kBool:
        return a.b == b.b;
      case Tag::kInt:
        return a.i == b.i;
      case Tag::kSymbol:
        return a.symbol == b.symbol;
    }
    return false;
  }
  friend bool operator!=(const SmvValue& a, const SmvValue& b) {
    return !(a == b);
  }
};

/// A compiled model: the symbolic transition system plus everything needed
/// to check its SPECs and print traces with SMV-level values.
class SmvModel {
 public:
  /// The underlying transition system (labels include every DEFINE and a
  /// synthesized label per atomic spec predicate).
  [[nodiscard]] ts::TransitionSystem& system() { return *system_; }
  [[nodiscard]] const ts::TransitionSystem& system() const { return *system_; }

  /// The SPECs in declaration order (atoms refer to synthesized labels).
  [[nodiscard]] const std::vector<ctl::Formula::Ptr>& specs() const {
    return specs_;
  }
  /// The original source text of each SPEC.
  [[nodiscard]] const std::vector<std::string>& spec_texts() const {
    return spec_texts_;
  }

  [[nodiscard]] const std::vector<std::string>& variable_names() const {
    return var_names_;
  }
  /// Value of SMV variable `index` in a concrete state.
  [[nodiscard]] SmvValue value_of(std::size_t index,
                                  const bdd::Bdd& state) const;
  /// SMV-style state rendering; with `diff_from`, only changed variables.
  [[nodiscard]] std::string state_string(
      const bdd::Bdd& state, const bdd::Bdd& diff_from = bdd::Bdd()) const;
  /// Render a whole trace (prefix + "-- loop starts here --" + cycle).
  [[nodiscard]] std::string trace_string(
      const std::vector<bdd::Bdd>& prefix,
      const std::vector<bdd::Bdd>& cycle) const;

  /// Per-variable decoding info (exposed for tools that render traces
  /// themselves; populated by compile()).
  struct VarInfo {
    std::string name;
    std::vector<SmvValue> domain;      // domain values in encoding order
    std::vector<ts::VarId> bits;       // boolean: single bit
    bool is_boolean = false;
  };
  [[nodiscard]] const std::vector<VarInfo>& variables() const { return vars_; }

 private:
  friend class SmvModelBuilder;
  std::unique_ptr<ts::TransitionSystem> system_;
  std::vector<ctl::Formula::Ptr> specs_;
  std::vector<std::string> spec_texts_;
  std::vector<std::string> var_names_;
  std::vector<VarInfo> vars_;
};

/// One static-analysis diagnostic about an SMV source (see analyze::Linter).
struct LintFinding {
  std::string check;    ///< stable kebab-case check name, e.g. "unused-variable"
  std::string message;  ///< human-readable description
  std::size_t line = 0; ///< 1-based source line (0 when not attributable)
  bool error = false;   ///< true for parse/compile failures, false for lints
};

/// Knobs for compile().  Default-constructed options reproduce the plain
/// compile() behaviour exactly.
struct CompileOptions {
  /// Fold provably constant variables: a variable whose initial value is a
  /// constant and whose next-state function provably re-produces it is
  /// pinned by a two-literal rail predicate instead of its full assignment
  /// relation (dead-assignment elimination; shrinks conjunct supports so
  /// the cone-of-influence pass can sever it).  nullopt reads the
  /// SYMCEX_FOLD_CONST environment flag.
  std::optional<bool> fold_constants;
  /// When non-null, semantic lint findings discovered during elaboration
  /// (unreachable case arms, range-dead comparisons, constant next-state
  /// functions) are appended here instead of being discarded.
  std::vector<LintFinding>* findings = nullptr;
};

/// Compile SMV source text into a ready-to-check model.  Throws SmvError.
[[nodiscard]] SmvModel compile(const std::string& source);
[[nodiscard]] SmvModel compile(const std::string& source,
                               const CompileOptions& options);

}  // namespace symcex::smv
