// Lexer and recursive-descent parser for the mini-SMV language.

#include <cctype>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "smv/ast.hpp"

namespace symcex::smv::detail {

namespace {

enum class T {
  kEnd,
  kIdent,
  kInt,
  // keywords
  kModule,
  kVar,
  kAssign,
  kDefine,
  kTrans,
  kInit,
  kInvar,
  kFairness,
  kSpec,
  kInitFn,  // "init" used as init(x)
  kNextFn,  // "next"
  kCase,
  kEsac,
  kBoolean,
  kTrue,
  kFalse,
  kXorWord,
  kModWord,
  kUnion,
  kEXk,
  kEFk,
  kEGk,
  kAXk,
  kAFk,
  kAGk,
  kEk,
  kAk,
  // punctuation
  kColon,
  kSemi,
  kComma,
  kAssignOp,  // :=
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kDotDot,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kUk,  // U inside E[ .. U .. ]
};

struct Token {
  T kind;
  std::string text;
  std::int64_t ival = 0;
  std::size_t line = 1;
  std::size_t offset = 0;  // byte offset of the token start
};

const std::unordered_map<std::string, T>& keywords() {
  static const std::unordered_map<std::string, T> kw = {
      {"MODULE", T::kModule},     {"VAR", T::kVar},
      {"ASSIGN", T::kAssign},     {"DEFINE", T::kDefine},
      {"TRANS", T::kTrans},       {"INIT", T::kInit},
      {"INVAR", T::kInvar},       {"FAIRNESS", T::kFairness},
      {"JUSTICE", T::kFairness},  {"SPEC", T::kSpec},
      {"CTLSPEC", T::kSpec},      {"init", T::kInitFn},
      {"next", T::kNextFn},       {"case", T::kCase},
      {"esac", T::kEsac},         {"boolean", T::kBoolean},
      {"TRUE", T::kTrue},         {"FALSE", T::kFalse},
      {"xor", T::kXorWord},       {"mod", T::kModWord},
      {"union", T::kUnion},       {"EX", T::kEXk},
      {"EF", T::kEFk},            {"EG", T::kEGk},
      {"AX", T::kAXk},            {"AF", T::kAFk},
      {"AG", T::kAGk},            {"E", T::kEk},
      {"A", T::kAk},              {"U", T::kUk},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const { return cur_; }
  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

 private:
  void advance() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '-' &&
          text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
    const std::size_t start = pos_;
    cur_ = Token{T::kEnd, "", 0, line_, start};
    if (pos_ >= text_.size()) return;
    const char c = text_[pos_];
    auto two = [&](char second) {
      return pos_ + 1 < text_.size() && text_[pos_ + 1] == second;
    };
    auto punct = [&](T k, std::size_t len) {
      cur_ = Token{k, text_.substr(start, len), 0, line_, start};
      pos_ += len;
    };
    switch (c) {
      case ':':
        return two('=') ? punct(T::kAssignOp, 2) : punct(T::kColon, 1);
      case ';':
        return punct(T::kSemi, 1);
      case ',':
        return punct(T::kComma, 1);
      case '(':
        return punct(T::kLParen, 1);
      case ')':
        return punct(T::kRParen, 1);
      case '{':
        return punct(T::kLBrace, 1);
      case '}':
        return punct(T::kRBrace, 1);
      case '[':
        return punct(T::kLBracket, 1);
      case ']':
        return punct(T::kRBracket, 1);
      case '.':
        if (two('.')) return punct(T::kDotDot, 2);
        throw SmvError("unexpected '.'", line_);
      case '!':
        return two('=') ? punct(T::kNe, 2) : punct(T::kNot, 1);
      case '&':
        return punct(T::kAnd, 1);
      case '|':
        return punct(T::kOr, 1);
      case '-':
        if (two('>')) return punct(T::kImplies, 2);
        return punct(T::kMinus, 1);
      case '<':
        if (two('-') && pos_ + 2 < text_.size() && text_[pos_ + 2] == '>') {
          return punct(T::kIff, 3);
        }
        return two('=') ? punct(T::kLe, 2) : punct(T::kLt, 1);
      case '>':
        return two('=') ? punct(T::kGe, 2) : punct(T::kGt, 1);
      case '=':
        return punct(T::kEq, 1);
      case '+':
        return punct(T::kPlus, 1);
      case '*':
        return punct(T::kStar, 1);
      case '/':
        return punct(T::kSlash, 1);
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = pos_;
      while (end < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[end]))) {
        ++end;
      }
      const std::string digits = text_.substr(pos_, end - pos_);
      pos_ = end;
      std::int64_t value = 0;
      try {
        value = std::stoll(digits);
      } catch (const std::out_of_range&) {
        throw SmvError("integer literal '" + digits + "' out of range",
                       line_);
      }
      cur_ = Token{T::kInt, digits, value, line_, start};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_' || text_[end] == '.')) {
        ++end;
      }
      std::string word = text_.substr(pos_, end - pos_);
      pos_ = end;
      const auto it = keywords().find(word);
      cur_ = Token{it != keywords().end() ? it->second : T::kIdent,
                   std::move(word), 0, line_, start};
      return;
    }
    throw SmvError(std::string("unexpected character '") + c + "'", line_);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  Token cur_;
};

class Parser {
 public:
  explicit Parser(const std::string& source) : src_(source), lex_(source) {}

  Program parse() {
    while (lex_.peek().kind != T::kEnd) {
      expect(T::kModule, "MODULE");
      parse_module();
    }
    if (prog_.modules.empty()) {
      throw SmvError("no MODULE declared", 1);
    }
    return prog_;
  }

 private:
  void parse_module() {
    Module mod;
    const Token name = expect(T::kIdent, "module name");
    mod.name = name.text;
    mod.line = name.line;
    for (const auto& existing : prog_.modules) {
      if (existing.name == mod.name) {
        throw SmvError("duplicate MODULE '" + mod.name + "'", name.line);
      }
    }
    if (lex_.peek().kind == T::kLParen) {
      lex_.take();
      if (lex_.peek().kind != T::kRParen) {
        for (;;) {
          mod.params.push_back(expect(T::kIdent, "parameter name").text);
          const Token sep = lex_.take();
          if (sep.kind == T::kRParen) break;
          if (sep.kind != T::kComma) {
            throw SmvError("expected ',' or ')' in parameter list",
                           sep.line);
          }
        }
      } else {
        lex_.take();
      }
    }
    cur_ = &mod;
    while (lex_.peek().kind != T::kEnd && lex_.peek().kind != T::kModule) {
      const Token section = lex_.take();
      switch (section.kind) {
        case T::kVar:
          parse_var_section();
          break;
        case T::kAssign:
          parse_assign_section();
          break;
        case T::kDefine:
          parse_define_section();
          break;
        case T::kTrans:
          cur_->trans.push_back(section_expr());
          break;
        case T::kInit:
          cur_->init.push_back(section_expr());
          break;
        case T::kInvar:
          cur_->invar.push_back(section_expr());
          break;
        case T::kFairness:
          cur_->fairness.push_back(section_expr());
          break;
        case T::kSpec: {
          const std::size_t from = lex_.peek().offset;
          cur_->specs.push_back(section_expr());
          const std::size_t to = last_end_;
          std::string text = src_.substr(from, to - from);
          while (!text.empty() &&
                 std::isspace(static_cast<unsigned char>(text.back()))) {
            text.pop_back();
          }
          cur_->spec_texts.push_back(std::move(text));
          break;
        }
        default:
          throw SmvError("expected a section keyword, found '" + section.text +
                             "'",
                         section.line);
      }
    }
    prog_.modules.push_back(std::move(mod));
    cur_ = nullptr;
  }

  // -- sections -------------------------------------------------------------

  [[nodiscard]] bool at_section_start() const {
    switch (lex_.peek().kind) {
      case T::kVar:
      case T::kAssign:
      case T::kDefine:
      case T::kTrans:
      case T::kInit:
      case T::kInvar:
      case T::kFairness:
      case T::kSpec:
      case T::kModule:
      case T::kEnd:
        return true;
      default:
        return false;
    }
  }

  ExprP section_expr() {
    ExprP e = parse_expr();
    if (lex_.peek().kind == T::kSemi) lex_.take();
    return e;
  }

  void parse_var_section() {
    while (!at_section_start()) {
      const Token name = expect(T::kIdent, "variable name");
      expect(T::kColon, "':'");
      VarDecl decl;
      decl.name = name.text;
      decl.line = name.line;
      const Token t = lex_.take();
      if (t.kind == T::kBoolean) {
        decl.type = VarDecl::Type::kBoolean;
      } else if (t.kind == T::kIdent) {
        // Instance of another module, with optional arguments.
        decl.type = VarDecl::Type::kInstance;
        decl.module = t.text;
        if (lex_.peek().kind == T::kLParen) {
          lex_.take();
          if (lex_.peek().kind == T::kRParen) {
            lex_.take();
          } else {
            for (;;) {
              decl.arguments.push_back(parse_expr());
              const Token sep = lex_.take();
              if (sep.kind == T::kRParen) break;
              if (sep.kind != T::kComma) {
                throw SmvError("expected ',' or ')' in instance arguments",
                               sep.line);
              }
            }
          }
        }
      } else if (t.kind == T::kLBrace) {
        decl.type = VarDecl::Type::kDomain;
        for (;;) {
          const Token v = lex_.take();
          SmvValue val;
          if (v.kind == T::kIdent) {
            val.tag = SmvValue::Tag::kSymbol;
            val.symbol = v.text;
          } else if (v.kind == T::kInt) {
            val.tag = SmvValue::Tag::kInt;
            val.i = v.ival;
          } else if (v.kind == T::kMinus) {
            const Token n = expect(T::kInt, "integer");
            val.tag = SmvValue::Tag::kInt;
            val.i = -n.ival;
          } else {
            throw SmvError("expected enum member, found '" + v.text + "'",
                           v.line);
          }
          decl.domain.push_back(std::move(val));
          const Token sep = lex_.take();
          if (sep.kind == T::kRBrace) break;
          if (sep.kind != T::kComma) {
            throw SmvError("expected ',' or '}' in enum", sep.line);
          }
        }
      } else if (t.kind == T::kInt || t.kind == T::kMinus) {
        decl.type = VarDecl::Type::kDomain;
        std::int64_t lo =
            t.kind == T::kMinus ? -expect(T::kInt, "integer").ival : t.ival;
        expect(T::kDotDot, "'..'");
        std::int64_t hi;
        const Token h = lex_.take();
        if (h.kind == T::kMinus) {
          hi = -expect(T::kInt, "integer").ival;
        } else if (h.kind == T::kInt) {
          hi = h.ival;
        } else {
          throw SmvError("expected integer range bound", h.line);
        }
        if (hi < lo || hi - lo >= 1u << 20) {
          throw SmvError("bad range " + std::to_string(lo) + ".." +
                             std::to_string(hi),
                         t.line);
        }
        for (std::int64_t v = lo; v <= hi; ++v) {
          SmvValue val;
          val.tag = SmvValue::Tag::kInt;
          val.i = v;
          decl.domain.push_back(val);
        }
      } else {
        throw SmvError("expected a type after ':'", t.line);
      }
      expect(T::kSemi, "';'");
      cur_->vars.push_back(std::move(decl));
    }
  }

  void parse_assign_section() {
    while (!at_section_start()) {
      const Token t = lex_.take();
      Assign a;
      a.line = t.line;
      if (t.kind == T::kInitFn || t.kind == T::kNextFn) {
        a.kind = t.kind == T::kInitFn ? Assign::Kind::kInit
                                      : Assign::Kind::kNext;
        expect(T::kLParen, "'('");
        a.var = expect(T::kIdent, "variable name").text;
        expect(T::kRParen, "')'");
      } else if (t.kind == T::kIdent) {
        a.kind = Assign::Kind::kCurrent;
        a.var = t.text;
      } else {
        throw SmvError("expected init(x), next(x) or x in ASSIGN", t.line);
      }
      expect(T::kAssignOp, "':='");
      a.rhs = parse_expr();
      expect(T::kSemi, "';'");
      cur_->assigns.push_back(std::move(a));
    }
  }

  void parse_define_section() {
    while (!at_section_start()) {
      Define d;
      const Token name = expect(T::kIdent, "DEFINE name");
      d.name = name.text;
      d.line = name.line;
      expect(T::kAssignOp, "':='");
      d.rhs = parse_expr();
      expect(T::kSemi, "';'");
      cur_->defines.push_back(std::move(d));
    }
  }

  // -- expressions (precedence climbing) -------------------------------------

  /// Bound on expression nesting.  The recursive descent burns a dozen-odd
  /// stack frames per level, so without a limit a mechanically generated
  /// "((((...1...))))" or "!!!!...x" overflows the stack instead of
  /// reporting a parse error.  2000 levels is far beyond any real model
  /// and stays well inside the default 8 MiB stack.
  static constexpr std::size_t kMaxExprDepth = 2000;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.expr_depth_ > kMaxExprDepth) {
        --p_.expr_depth_;  // the destructor will not run after a throw
        throw SmvError("expression nested deeper than " +
                           std::to_string(kMaxExprDepth) + " levels",
                       p_.lex_.peek().line);
      }
    }
    ~DepthGuard() { --p_.expr_depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& p_;
  };

  ExprP parse_expr() {
    const DepthGuard depth(*this);
    return parse_iff();
  }

  ExprP parse_iff() {
    ExprP e = parse_implies();
    while (lex_.peek().kind == T::kIff) {
      const std::size_t line = lex_.take().line;
      e = Expr::make(EK::kIff, line, {e, parse_implies()});
    }
    return e;
  }

  ExprP parse_implies() {
    ExprP e = parse_or();
    if (lex_.peek().kind == T::kImplies) {
      const std::size_t line = lex_.take().line;
      return Expr::make(EK::kImplies, line, {e, parse_implies()});
    }
    return e;
  }

  ExprP parse_or() {
    ExprP e = parse_xor();
    while (lex_.peek().kind == T::kOr) {
      const std::size_t line = lex_.take().line;
      e = Expr::make(EK::kOr, line, {e, parse_xor()});
    }
    return e;
  }

  ExprP parse_xor() {
    ExprP e = parse_and();
    while (lex_.peek().kind == T::kXorWord) {
      const std::size_t line = lex_.take().line;
      e = Expr::make(EK::kXor, line, {e, parse_and()});
    }
    return e;
  }

  ExprP parse_and() {
    ExprP e = parse_temporal();
    while (lex_.peek().kind == T::kAnd) {
      const std::size_t line = lex_.take().line;
      e = Expr::make(EK::kAnd, line, {e, parse_temporal()});
    }
    return e;
  }

  /// Negation and the temporal unaries bind looser than comparison and
  /// arithmetic (NuSMV-style: "AF st = done" means AF (st = done)) but
  /// tighter than '&'.
  ExprP parse_temporal() {
    const DepthGuard depth(*this);
    const Token t = lex_.peek();
    auto unary = [&](EK k) {
      lex_.take();
      return Expr::make(k, t.line, {parse_temporal()});
    };
    switch (t.kind) {
      case T::kNot:
        return unary(EK::kNot);
      case T::kEXk:
        return unary(EK::kEX);
      case T::kEFk:
        return unary(EK::kEF);
      case T::kEGk:
        return unary(EK::kEG);
      case T::kAXk:
        return unary(EK::kAX);
      case T::kAFk:
        return unary(EK::kAF);
      case T::kAGk:
        return unary(EK::kAG);
      case T::kEk:
      case T::kAk: {
        lex_.take();
        expect(T::kLBracket, "'[' (E[f U g] / A[f U g])");
        ExprP lhs = parse_expr();
        expect(T::kUk, "'U'");
        ExprP rhs = parse_expr();
        expect(T::kRBracket, "']'");
        return Expr::make(t.kind == T::kEk ? EK::kEU : EK::kAU, t.line,
                          {lhs, rhs});
      }
      default:
        return parse_cmp();
    }
  }

  ExprP parse_cmp() {
    ExprP e = parse_union();
    for (;;) {
      EK k;
      switch (lex_.peek().kind) {
        case T::kEq:
          k = EK::kEq;
          break;
        case T::kNe:
          k = EK::kNe;
          break;
        case T::kLt:
          k = EK::kLt;
          break;
        case T::kLe:
          k = EK::kLe;
          break;
        case T::kGt:
          k = EK::kGt;
          break;
        case T::kGe:
          k = EK::kGe;
          break;
        default:
          return e;
      }
      const std::size_t line = lex_.take().line;
      e = Expr::make(k, line, {e, parse_union()});
    }
  }

  ExprP parse_union() {
    ExprP e = parse_add();
    while (lex_.peek().kind == T::kUnion) {
      const std::size_t line = lex_.take().line;
      // a union b is a two-member set.
      e = Expr::make(EK::kSet, line, {e, parse_add()});
    }
    return e;
  }

  ExprP parse_add() {
    ExprP e = parse_mul();
    for (;;) {
      EK k;
      if (lex_.peek().kind == T::kPlus) {
        k = EK::kAdd;
      } else if (lex_.peek().kind == T::kMinus) {
        k = EK::kSub;
      } else {
        return e;
      }
      const std::size_t line = lex_.take().line;
      e = Expr::make(k, line, {e, parse_mul()});
    }
  }

  ExprP parse_mul() {
    ExprP e = parse_unary();
    for (;;) {
      EK k;
      switch (lex_.peek().kind) {
        case T::kStar:
          k = EK::kMul;
          break;
        case T::kSlash:
          k = EK::kDiv;
          break;
        case T::kModWord:
          k = EK::kMod;
          break;
        default:
          return e;
      }
      const std::size_t line = lex_.take().line;
      e = Expr::make(k, line, {e, parse_unary()});
    }
  }

  ExprP parse_unary() {
    const DepthGuard depth(*this);
    const Token t = lex_.peek();
    switch (t.kind) {
      case T::kNot: {
        // Also allowed here so "a = !b" and "!!x" still parse.
        lex_.take();
        return Expr::make(EK::kNot, t.line, {parse_unary()});
      }
      case T::kMinus:
        lex_.take();
        return Expr::make(EK::kNeg, t.line, {parse_unary()});
      case T::kNextFn: {
        lex_.take();
        expect(T::kLParen, "'('");
        ExprP sub = parse_expr();
        expect(T::kRParen, "')'");
        return Expr::make(EK::kNext, t.line, {sub});
      }
      default:
        return parse_primary();
    }
  }

  ExprP parse_primary() {
    const Token t = lex_.take();
    last_end_ = lex_.peek().offset;
    switch (t.kind) {
      case T::kTrue:
        return Expr::make(EK::kTrue, t.line);
      case T::kFalse:
        return Expr::make(EK::kFalse, t.line);
      case T::kInt: {
        auto e = Expr::make(EK::kInt, t.line);
        const_cast<Expr&>(*e).ival = t.ival;
        return e;
      }
      case T::kIdent: {
        auto e = Expr::make(EK::kIdent, t.line);
        const_cast<Expr&>(*e).name = t.text;
        return e;
      }
      case T::kLParen: {
        ExprP e = parse_expr();
        expect(T::kRParen, "')'");
        last_end_ = lex_.peek().offset;
        return e;
      }
      case T::kLBrace: {
        std::vector<ExprP> members;
        for (;;) {
          members.push_back(parse_expr());
          const Token sep = lex_.take();
          if (sep.kind == T::kRBrace) break;
          if (sep.kind != T::kComma) {
            throw SmvError("expected ',' or '}' in set", sep.line);
          }
        }
        last_end_ = lex_.peek().offset;
        return Expr::make(EK::kSet, t.line, std::move(members));
      }
      case T::kCase: {
        std::vector<ExprP> kids;
        while (lex_.peek().kind != T::kEsac) {
          kids.push_back(parse_expr());  // condition
          expect(T::kColon, "':'");
          kids.push_back(parse_expr());  // value
          expect(T::kSemi, "';'");
        }
        lex_.take();  // esac
        if (kids.empty()) throw SmvError("empty case", t.line);
        last_end_ = lex_.peek().offset;
        return Expr::make(EK::kCase, t.line, std::move(kids));
      }
      default:
        throw SmvError("unexpected token '" + t.text + "'", t.line);
    }
  }

  Token expect(T kind, const char* what) {
    const Token t = lex_.take();
    if (t.kind != kind) {
      throw SmvError(std::string("expected ") + what + ", found '" + t.text +
                         "'",
                     t.line);
    }
    last_end_ = lex_.peek().offset;
    return t;
  }

  const std::string& src_;
  Lexer lex_;
  Program prog_;
  Module* cur_ = nullptr;
  std::size_t last_end_ = 0;  // offset just past the last consumed token
  std::size_t expr_depth_ = 0;  // current expression nesting (DepthGuard)
};

}  // namespace

Program parse_program(const std::string& source) {
  return Parser(source).parse();
}

}  // namespace symcex::smv::detail
