// Module-hierarchy flattening: inline every instance declaration into one
// flat module, prefixing local symbols with the instance path ("arb.g1")
// and substituting module parameters by their (already rewritten)
// argument expressions -- the classic SMV elaboration step.

#include <map>
#include <set>
#include <vector>

#include "smv/ast.hpp"

namespace symcex::smv::detail {

namespace {

class Flattener {
 public:
  explicit Flattener(const Program& prog) : prog_(prog) {}

  Module run() {
    const Module& main = find("main", 1);
    if (!main.params.empty()) {
      throw SmvError("MODULE main must not take parameters", main.line);
    }
    out_.name = "main";
    std::vector<std::string> stack;
    inline_module(main, "", {}, stack);
    return std::move(out_);
  }

 private:
  const Module& find(const std::string& name, std::size_t line) const {
    for (const auto& m : prog_.modules) {
      if (m.name == name) return m;
    }
    throw SmvError("unknown MODULE '" + name + "'", line);
  }

  static std::set<std::string> locals_of(const Module& m) {
    std::set<std::string> out;
    for (const auto& v : m.vars) out.insert(v.name);
    for (const auto& d : m.defines) out.insert(d.name);
    return out;
  }

  /// Rewrite an expression from a module's local namespace into the flat
  /// namespace: parameters substitute to their argument expressions,
  /// local symbols (including instance components "inst.x") gain the
  /// instance prefix, anything else (enum literals) passes through.
  ExprP rewrite(const ExprP& e, const std::map<std::string, ExprP>& subst,
                const std::string& prefix,
                const std::set<std::string>& locals) {
    if (e->kind == EK::kIdent) {
      const std::size_t dot = e->name.find('.');
      const std::string head =
          dot == std::string::npos ? e->name : e->name.substr(0, dot);
      if (const auto it = subst.find(head); it != subst.end()) {
        if (dot == std::string::npos) return it->second;
        // formal.component: the argument must itself be a name.
        if (it->second->kind != EK::kIdent) {
          throw SmvError("cannot select component '" +
                             e->name.substr(dot + 1) +
                             "' from a non-name argument",
                         e->line);
        }
        auto node = Expr::make(EK::kIdent, e->line);
        const_cast<Expr&>(*node).name =
            it->second->name + e->name.substr(dot);
        return node;
      }
      if (locals.contains(head)) {
        auto node = Expr::make(EK::kIdent, e->line);
        const_cast<Expr&>(*node).name = prefix + e->name;
        return node;
      }
      return e;  // enum literal or error reported during elaboration
    }
    if (e->kids.empty()) return e;
    std::vector<ExprP> kids;
    kids.reserve(e->kids.size());
    bool changed = false;
    for (const auto& k : e->kids) {
      kids.push_back(rewrite(k, subst, prefix, locals));
      changed = changed || kids.back() != k;
    }
    if (!changed) return e;
    auto node = Expr::make(e->kind, e->line, std::move(kids));
    const_cast<Expr&>(*node).ival = e->ival;
    const_cast<Expr&>(*node).name = e->name;
    return node;
  }

  void inline_module(const Module& m, const std::string& prefix,
                     const std::map<std::string, ExprP>& subst,
                     std::vector<std::string>& stack) {
    for (const auto& frame : stack) {
      if (frame == m.name) {
        throw SmvError("cyclic module instantiation through '" + m.name + "'",
                       m.line);
      }
    }
    stack.push_back(m.name);
    const std::set<std::string> locals = locals_of(m);

    for (const auto& v : m.vars) {
      if (v.type == VarDecl::Type::kInstance) {
        const Module& child = find(v.module, v.line);
        if (child.params.size() != v.arguments.size()) {
          throw SmvError("module '" + v.module + "' expects " +
                             std::to_string(child.params.size()) +
                             " argument(s), got " +
                             std::to_string(v.arguments.size()),
                         v.line);
        }
        std::map<std::string, ExprP> child_subst;
        for (std::size_t i = 0; i < child.params.size(); ++i) {
          child_subst[child.params[i]] =
              rewrite(v.arguments[i], subst, prefix, locals);
        }
        inline_module(child, prefix + v.name + ".", child_subst, stack);
      } else {
        VarDecl flat = v;
        flat.name = prefix + v.name;
        out_.vars.push_back(std::move(flat));
      }
    }
    for (const auto& a : m.assigns) {
      Assign flat = a;
      flat.var = prefix + a.var;
      flat.rhs = rewrite(a.rhs, subst, prefix, locals);
      out_.assigns.push_back(std::move(flat));
    }
    for (const auto& d : m.defines) {
      Define flat = d;
      flat.name = prefix + d.name;
      flat.rhs = rewrite(d.rhs, subst, prefix, locals);
      out_.defines.push_back(std::move(flat));
    }
    for (const auto& e : m.trans) {
      out_.trans.push_back(rewrite(e, subst, prefix, locals));
    }
    for (const auto& e : m.init) {
      out_.init.push_back(rewrite(e, subst, prefix, locals));
    }
    for (const auto& e : m.invar) {
      out_.invar.push_back(rewrite(e, subst, prefix, locals));
    }
    for (const auto& e : m.fairness) {
      out_.fairness.push_back(rewrite(e, subst, prefix, locals));
    }
    for (std::size_t i = 0; i < m.specs.size(); ++i) {
      out_.specs.push_back(rewrite(m.specs[i], subst, prefix, locals));
      out_.spec_texts.push_back(
          prefix.empty() ? m.spec_texts[i] : prefix + " " + m.spec_texts[i]);
    }
    stack.pop_back();
  }

  const Program& prog_;
  Module out_;
};

}  // namespace

Module flatten_program(const Program& program) {
  return Flattener(program).run();
}

}  // namespace symcex::smv::detail
