// Elaboration of a parsed mini-SMV program onto the symbolic layer.

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "diag/metrics.hpp"
#include "smv/ast.hpp"
#include "smv/smv.hpp"

namespace symcex::smv {

/// Friend of SmvModel granting the compiler write access to its internals.
class SmvModelBuilder {
 public:
  explicit SmvModelBuilder(SmvModel& m) : m_(m) {}
  std::unique_ptr<ts::TransitionSystem>& system() { return m_.system_; }
  std::vector<ctl::Formula::Ptr>& specs() { return m_.specs_; }
  std::vector<std::string>& spec_texts() { return m_.spec_texts_; }
  std::vector<std::string>& var_names() { return m_.var_names_; }
  std::vector<SmvModel::VarInfo>& vars() { return m_.vars_; }

 private:
  SmvModel& m_;
};

namespace {

using detail::Assign;
using detail::EK;
using detail::Expr;
using detail::ExprP;
using detail::Module;
using detail::VarDecl;

bool value_eq(const SmvValue& a, const SmvValue& b) {
  if (a.tag != b.tag) return false;
  switch (a.tag) {
    case SmvValue::Tag::kBool:
      return a.b == b.b;
    case SmvValue::Tag::kInt:
      return a.i == b.i;
    case SmvValue::Tag::kSymbol:
      return a.symbol == b.symbol;
  }
  return false;
}

/// A symbolic value: a list of (value, guard) alternatives.  Guards of a
/// deterministic expression partition the state space; overlapping guards
/// model nondeterministic choice (set expressions).
struct SymValue {
  std::vector<std::pair<SmvValue, bdd::Bdd>> alts;

  void add(const SmvValue& v, const bdd::Bdd& guard) {
    if (guard.is_false()) return;
    for (auto& [val, g] : alts) {
      if (value_eq(val, v)) {
        g |= guard;
        return;
      }
    }
    alts.emplace_back(v, guard);
  }
};

SmvValue bool_value(bool b) {
  SmvValue v;
  v.tag = SmvValue::Tag::kBool;
  v.b = b;
  return v;
}

SmvValue int_value(std::int64_t i) {
  SmvValue v;
  v.tag = SmvValue::Tag::kInt;
  v.i = i;
  return v;
}

bool contains_temporal(const ExprP& e) {
  switch (e->kind) {
    case EK::kEX:
    case EK::kEF:
    case EK::kEG:
    case EK::kAX:
    case EK::kAF:
    case EK::kAG:
    case EK::kEU:
    case EK::kAU:
      return true;
    default:
      for (const auto& k : e->kids) {
        if (contains_temporal(k)) return true;
      }
      return false;
  }
}

/// Walk every identifier occurrence in an expression tree.
template <typename Fn>
void walk_idents(const ExprP& e, Fn&& fn) {
  if (e->kind == EK::kIdent) fn(*e);
  for (const auto& k : e->kids) walk_idents(k, fn);
}

struct VarSlot {
  std::string name;
  bool is_boolean = false;
  std::vector<SmvValue> domain;   // encoding order (index = encoded value)
  std::vector<ts::VarId> bits;    // boolean: one bit
};

class Compiler {
 public:
  Compiler(const Module& prog, const CompileOptions& options)
      : prog_(prog),
        findings_(options.findings),
        fold_(options.fold_constants.value_or(
            diag::env_flag("SYMCEX_FOLD_CONST"))) {}

  SmvModel run() {
    builder_.system() = std::make_unique<ts::TransitionSystem>();
    init_ = mgr().one();
    declare_vars();
    collect_defines();
    propagate_constants();
    process_assigns();
    process_sections();
    process_specs();
    finish();
    return std::move(model_);
  }

 private:
  ts::TransitionSystem& sys() { return *builder_.system(); }
  bdd::Manager& mgr() { return sys().manager(); }

  // -- declarations -----------------------------------------------------------

  void declare_vars() {
    for (const auto& d : prog_.vars) {
      if (slots_.contains(d.name)) {
        throw SmvError("duplicate variable '" + d.name + "'", d.line);
      }
      VarSlot slot;
      slot.name = d.name;
      if (d.type == VarDecl::Type::kInstance) {
        throw std::logic_error(
            "Compiler: instance declaration survived flattening");
      }
      if (d.type == VarDecl::Type::kBoolean) {
        slot.is_boolean = true;
        slot.bits = {sys().add_var(d.name)};
      } else {
        if (d.domain.size() < 2) {
          throw SmvError("variable '" + d.name + "' needs at least 2 values",
                         d.line);
        }
        for (std::size_t i = 0; i < d.domain.size(); ++i) {
          for (std::size_t j = i + 1; j < d.domain.size(); ++j) {
            if (value_eq(d.domain[i], d.domain[j])) {
              throw SmvError("duplicate domain value in '" + d.name + "'",
                             d.line);
            }
          }
        }
        slot.domain = d.domain;
        std::uint32_t bits = 1;
        while ((1u << bits) < slot.domain.size()) ++bits;
        slot.bits = sys().add_vector(d.name, bits);
      }
      order_.push_back(d.name);
      slots_.emplace(d.name, std::move(slot));
    }
    if (order_.empty()) {
      throw SmvError("model declares no variables", 1);
    }
    // A variable named like an enum literal would win every identifier
    // lookup and silently shadow the literal; reject the ambiguity.
    for (const auto& d : prog_.vars) {
      if (is_enum_literal(d.name)) {
        throw SmvError("variable '" + d.name +
                           "' shadows an enum literal of the same name",
                       d.line);
      }
    }
    // Precompute the valid-encoding predicate (both rails); case
    // exhaustiveness is judged relative to it, since the unused encodings
    // of non-power-of-two domains are unreachable by construction.
    valid_all_ = mgr().one();
    for (const auto& name : order_) {
      const VarSlot& slot = slots_.at(name);
      valid_all_ &= valid(slot, false) & valid(slot, true);
    }
  }

  void collect_defines() {
    for (const auto& d : prog_.defines) {
      if (slots_.contains(d.name) || defines_.contains(d.name)) {
        throw SmvError("DEFINE '" + d.name + "' clashes with another symbol",
                       d.line);
      }
      if (is_enum_literal(d.name)) {
        throw SmvError("DEFINE '" + d.name +
                           "' shadows an enum literal of the same name",
                       d.line);
      }
      defines_.emplace(d.name, d.rhs);
    }
    check_define_cycles();
  }

  /// Reject DEFINE reference cycles up front.  The lazy cycle guard in
  /// eval_ident only fires when a cyclic macro is actually used; an unused
  /// cycle would otherwise compile silently and blow up later callers.
  void check_define_cycles() {
    enum class Mark { kVisiting, kDone };
    std::unordered_map<std::string, Mark> marks;
    // Iterative DFS (explicit stack) so adversarially deep chains cannot
    // overflow the call stack.
    for (const auto& d : prog_.defines) {
      if (marks.contains(d.name)) continue;
      std::vector<std::pair<std::string, std::size_t>> stack;
      stack.emplace_back(d.name, d.line);
      marks.emplace(d.name, Mark::kVisiting);
      std::vector<std::vector<std::pair<std::string, std::size_t>>> pending;
      pending.emplace_back();
      walk_idents(defines_.at(d.name), [&](const Expr& id) {
        if (defines_.contains(id.name)) {
          pending.back().emplace_back(id.name, id.line);
        }
      });
      while (!stack.empty()) {
        if (pending.back().empty()) {
          marks[stack.back().first] = Mark::kDone;
          stack.pop_back();
          pending.pop_back();
          continue;
        }
        const auto [name, line] = pending.back().back();
        pending.back().pop_back();
        const auto it = marks.find(name);
        if (it != marks.end()) {
          if (it->second == Mark::kVisiting) {
            throw SmvError("cyclic DEFINE '" + name + "'", line);
          }
          continue;
        }
        marks.emplace(name, Mark::kVisiting);
        stack.emplace_back(name, line);
        pending.emplace_back();
        walk_idents(defines_.at(name), [&](const Expr& id) {
          if (defines_.contains(id.name)) {
            pending.back().emplace_back(id.name, id.line);
          }
        });
      }
    }
  }

  [[nodiscard]] bool is_enum_literal(const std::string& name) const {
    for (const auto& [slot_name, slot] : slots_) {
      (void)slot_name;
      for (const auto& val : slot.domain) {
        if (val.tag == SmvValue::Tag::kSymbol && val.symbol == name) {
          return true;
        }
      }
    }
    return false;
  }

  void report(const char* check, const std::string& message,
              std::size_t line) {
    if (findings_ == nullptr) return;
    findings_->push_back(LintFinding{check, message, line, false});
  }

  // -- constant propagation ----------------------------------------------------

  /// Evaluate an expression to a constant under `env` (known-constant
  /// variable values), or nullopt when the value depends on state.  Purely
  /// syntactic-plus-env: no BDDs are built.  DEFINE cycles were rejected
  /// up front, so macro expansion terminates.
  std::optional<SmvValue> const_eval(
      const ExprP& e, const std::map<std::string, SmvValue>& env) {
    switch (e->kind) {
      case EK::kTrue:
        return bool_value(true);
      case EK::kFalse:
        return bool_value(false);
      case EK::kInt:
        return int_value(e->ival);
      case EK::kIdent: {
        if (slots_.contains(e->name)) {
          const auto it = env.find(e->name);
          if (it != env.end()) return it->second;
          return std::nullopt;
        }
        if (const auto it = defines_.find(e->name); it != defines_.end()) {
          return const_eval(it->second, env);
        }
        if (is_enum_literal(e->name)) {
          SmvValue v;
          v.tag = SmvValue::Tag::kSymbol;
          v.symbol = e->name;
          return v;
        }
        return std::nullopt;  // unknown identifier: let eval() diagnose it
      }
      case EK::kNext:
        // next(x) under a constant env: x holds the same value on both rails.
        return const_eval(e->kids[0], env);
      case EK::kNot: {
        const auto a = const_eval(e->kids[0], env);
        if (!a || a->tag != SmvValue::Tag::kBool) return std::nullopt;
        return bool_value(!a->b);
      }
      case EK::kNeg: {
        const auto a = const_eval(e->kids[0], env);
        if (!a || a->tag != SmvValue::Tag::kInt) return std::nullopt;
        return int_value(-a->i);
      }
      case EK::kAnd:
      case EK::kOr:
      case EK::kXor:
      case EK::kImplies:
      case EK::kIff: {
        const auto a = const_eval(e->kids[0], env);
        const auto b = const_eval(e->kids[1], env);
        const auto known_bool = [](const std::optional<SmvValue>& v) {
          return v && v->tag == SmvValue::Tag::kBool;
        };
        // Short-circuit: one dominating operand decides AND/OR/IMPLIES even
        // when the other side is state-dependent.
        if (e->kind == EK::kAnd &&
            ((known_bool(a) && !a->b) || (known_bool(b) && !b->b))) {
          return bool_value(false);
        }
        if (e->kind == EK::kOr &&
            ((known_bool(a) && a->b) || (known_bool(b) && b->b))) {
          return bool_value(true);
        }
        if (e->kind == EK::kImplies &&
            ((known_bool(a) && !a->b) || (known_bool(b) && b->b))) {
          return bool_value(true);
        }
        if (!known_bool(a) || !known_bool(b)) return std::nullopt;
        switch (e->kind) {
          case EK::kAnd:
            return bool_value(a->b && b->b);
          case EK::kOr:
            return bool_value(a->b || b->b);
          case EK::kXor:
            return bool_value(a->b != b->b);
          case EK::kImplies:
            return bool_value(!a->b || b->b);
          default:
            return bool_value(a->b == b->b);
        }
      }
      case EK::kEq:
      case EK::kNe: {
        const auto a = const_eval(e->kids[0], env);
        const auto b = const_eval(e->kids[1], env);
        if (!a || !b || a->tag != b->tag) return std::nullopt;
        const bool eq = value_eq(*a, *b);
        return bool_value(e->kind == EK::kEq ? eq : !eq);
      }
      case EK::kLt:
      case EK::kLe:
      case EK::kGt:
      case EK::kGe: {
        const auto a = const_eval(e->kids[0], env);
        const auto b = const_eval(e->kids[1], env);
        if (!a || !b || a->tag != SmvValue::Tag::kInt ||
            b->tag != SmvValue::Tag::kInt) {
          return std::nullopt;
        }
        switch (e->kind) {
          case EK::kLt:
            return bool_value(a->i < b->i);
          case EK::kLe:
            return bool_value(a->i <= b->i);
          case EK::kGt:
            return bool_value(a->i > b->i);
          default:
            return bool_value(a->i >= b->i);
        }
      }
      case EK::kAdd:
      case EK::kSub:
      case EK::kMul:
      case EK::kDiv:
      case EK::kMod: {
        const auto a = const_eval(e->kids[0], env);
        const auto b = const_eval(e->kids[1], env);
        if (!a || !b || a->tag != SmvValue::Tag::kInt ||
            b->tag != SmvValue::Tag::kInt) {
          return std::nullopt;
        }
        switch (e->kind) {
          case EK::kAdd:
            return int_value(a->i + b->i);
          case EK::kSub:
            return int_value(a->i - b->i);
          case EK::kMul:
            return int_value(a->i * b->i);
          case EK::kDiv:
            if (b->i == 0) return std::nullopt;  // eval() raises the error
            return int_value(a->i / b->i);
          default:
            if (b->i == 0) return std::nullopt;
            return int_value(((a->i % b->i) + b->i) % b->i);
        }
      }
      case EK::kSet: {
        // A set is constant only when it collapses to one value.
        std::optional<SmvValue> single;
        for (const auto& k : e->kids) {
          const auto v = const_eval(k, env);
          if (!v) return std::nullopt;
          if (!single) {
            single = v;
          } else if (!value_eq(*single, *v)) {
            return std::nullopt;
          }
        }
        return single;
      }
      case EK::kCase: {
        for (std::size_t i = 0; i + 1 < e->kids.size(); i += 2) {
          const auto g = const_eval(e->kids[i], env);
          if (!g || g->tag != SmvValue::Tag::kBool) return std::nullopt;
          if (g->b) return const_eval(e->kids[i + 1], env);
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  /// Least-fixpoint constant discovery: a variable is constant when its
  /// initial value is a constant c and its next-state function provably
  /// re-produces c given the constants already established (including,
  /// inductively, its own).  Combinational assignments with constant
  /// right-hand sides join the constant pool directly.
  void propagate_constants() {
    if (!fold_ && findings_ == nullptr) return;
    std::map<std::string, const Assign*> init_of;
    std::map<std::string, const Assign*> next_of;
    std::map<std::string, const Assign*> cur_of;
    for (const auto& a : prog_.assigns) {
      if (!slots_.contains(a.var)) continue;  // process_assigns diagnoses
      auto& m = a.kind == Assign::Kind::kInit
                    ? init_of
                    : a.kind == Assign::Kind::kNext ? next_of : cur_of;
      m.emplace(a.var, &a);  // duplicates rejected by process_assigns
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, a] : cur_of) {
        if (consts_.contains(name)) continue;
        if (const auto c = const_eval(a->rhs, consts_)) {
          consts_.emplace(name, *c);
          const_lines_[name] = a->line;
          changed = true;
        }
      }
      for (const auto& [name, a] : next_of) {
        if (consts_.contains(name)) continue;
        const auto ai = init_of.find(name);
        if (ai == init_of.end()) continue;
        const auto c0 = const_eval(ai->second->rhs, consts_);
        if (!c0) continue;
        auto env = consts_;
        env.emplace(name, *c0);
        const auto cn = const_eval(a->rhs, env);
        if (cn && value_eq(*cn, *c0)) {
          consts_.emplace(name, *c0);
          const_lines_[name] = a->line;
          foldable_.insert(name);
          changed = true;
        }
      }
    }
    for (const auto& [name, val] : consts_) {
      report("constant-next-state",
             "variable '" + name + "' is provably constant (always " +
                 val.to_string() + ")",
             const_lines_[name]);
    }
  }

  // -- encodings ---------------------------------------------------------------

  bdd::Bdd encode(const VarSlot& slot, std::size_t index, bool next_rail) {
    bdd::Bdd out = mgr().one();
    for (std::size_t b = 0; b < slot.bits.size(); ++b) {
      const bdd::Bdd lit =
          next_rail ? sys().next(slot.bits[b]) : sys().cur(slot.bits[b]);
      out &= ((index >> b) & 1u) != 0 ? lit : !lit;
    }
    return out;
  }

  bdd::Bdd valid(const VarSlot& slot, bool next_rail) {
    if (slot.is_boolean ||
        (slot.domain.size() & (slot.domain.size() - 1)) == 0) {
      return mgr().one();
    }
    bdd::Bdd out = mgr().zero();
    for (std::size_t i = 0; i < slot.domain.size(); ++i) {
      out |= encode(slot, i, next_rail);
    }
    return out;
  }

  // -- evaluation ---------------------------------------------------------------

  SymValue eval(const ExprP& e, bool next_rail) {
    switch (e->kind) {
      case EK::kTrue: {
        SymValue v;
        v.add(bool_value(true), mgr().one());
        return v;
      }
      case EK::kFalse: {
        SymValue v;
        v.add(bool_value(false), mgr().one());
        return v;
      }
      case EK::kInt: {
        SymValue v;
        v.add(int_value(e->ival), mgr().one());
        return v;
      }
      case EK::kIdent:
        return eval_ident(e, next_rail);
      case EK::kNext:
        if (next_rail) {
          throw SmvError("nested next()", e->line);
        }
        return eval(e->kids[0], /*next_rail=*/true);
      case EK::kNot: {
        const bdd::Bdd b = to_bdd(eval(e->kids[0], next_rail), e->line);
        SymValue v;
        v.add(bool_value(true), !b);
        v.add(bool_value(false), b);
        return v;
      }
      case EK::kNeg: {
        const SymValue a = eval(e->kids[0], next_rail);
        SymValue v;
        for (const auto& [val, g] : a.alts) {
          v.add(int_value(-as_int(val, e->line)), g);
        }
        return v;
      }
      case EK::kAnd:
      case EK::kOr:
      case EK::kXor:
      case EK::kImplies:
      case EK::kIff: {
        const bdd::Bdd a = to_bdd(eval(e->kids[0], next_rail), e->line);
        const bdd::Bdd b = to_bdd(eval(e->kids[1], next_rail), e->line);
        bdd::Bdd r;
        switch (e->kind) {
          case EK::kAnd:
            r = a & b;
            break;
          case EK::kOr:
            r = a | b;
            break;
          case EK::kXor:
            r = a ^ b;
            break;
          case EK::kImplies:
            r = !a | b;
            break;
          default:
            r = !(a ^ b);
            break;
        }
        SymValue v;
        v.add(bool_value(true), r);
        v.add(bool_value(false), !r);
        return v;
      }
      case EK::kEq:
      case EK::kNe:
      case EK::kLt:
      case EK::kLe:
      case EK::kGt:
      case EK::kGe:
        return eval_compare(e, next_rail);
      case EK::kAdd:
      case EK::kSub:
      case EK::kMul:
      case EK::kDiv:
      case EK::kMod:
        return eval_arith(e, next_rail);
      case EK::kSet: {
        SymValue v;
        for (const auto& k : e->kids) {
          const SymValue m = eval(k, next_rail);
          for (const auto& [val, g] : m.alts) v.add(val, g);
        }
        return v;
      }
      case EK::kCase:
        return eval_case(e, next_rail);
      default:
        throw SmvError("temporal operator outside SPEC", e->line);
    }
  }

  SymValue eval_ident(const ExprP& e, bool next_rail) {
    if (const auto it = slots_.find(e->name); it != slots_.end()) {
      const VarSlot& slot = it->second;
      SymValue v;
      if (slot.is_boolean) {
        const bdd::Bdd lit = next_rail ? sys().next(slot.bits[0])
                                       : sys().cur(slot.bits[0]);
        v.add(bool_value(true), lit);
        v.add(bool_value(false), !lit);
      } else {
        for (std::size_t i = 0; i < slot.domain.size(); ++i) {
          v.add(slot.domain[i], encode(slot, i, next_rail));
        }
      }
      return v;
    }
    if (const auto it = defines_.find(e->name); it != defines_.end()) {
      if (!expanding_.insert(e->name).second) {
        throw SmvError("cyclic DEFINE '" + e->name + "'", e->line);
      }
      SymValue v = eval(it->second, next_rail);
      expanding_.erase(e->name);
      return v;
    }
    // A bare symbol is an enum literal (it must appear in some domain).
    for (const auto& [name, slot] : slots_) {
      (void)name;
      for (const auto& val : slot.domain) {
        if (val.tag == SmvValue::Tag::kSymbol && val.symbol == e->name) {
          SymValue v;
          SmvValue lit;
          lit.tag = SmvValue::Tag::kSymbol;
          lit.symbol = e->name;
          v.add(lit, mgr().one());
          return v;
        }
      }
    }
    throw SmvError("unknown identifier '" + e->name + "'", e->line);
  }

  SymValue eval_compare(const ExprP& e, bool next_rail) {
    const SymValue a = eval(e->kids[0], next_rail);
    const SymValue b = eval(e->kids[1], next_rail);
    bdd::Bdd truth = mgr().zero();
    for (const auto& [va, ga] : a.alts) {
      for (const auto& [vb, gb] : b.alts) {
        bool r;
        if (e->kind == EK::kEq || e->kind == EK::kNe) {
          if (va.tag != vb.tag) {
            throw SmvError("comparison between incompatible types", e->line);
          }
          r = value_eq(va, vb);
          if (e->kind == EK::kNe) r = !r;
        } else {
          const std::int64_t ia = as_int(va, e->line);
          const std::int64_t ib = as_int(vb, e->line);
          switch (e->kind) {
            case EK::kLt:
              r = ia < ib;
              break;
            case EK::kLe:
              r = ia <= ib;
              break;
            case EK::kGt:
              r = ia > ib;
              break;
            default:
              r = ia >= ib;
              break;
          }
        }
        if (r) truth |= ga & gb;
      }
    }
    // Lint: a comparison decided by the domains alone (relative to the
    // valid encodings -- unused encodings of non-power-of-two domains do
    // not count) indicates a range-dead condition, e.g. `cnt >= 0` over
    // 0..7 or `cnt > 9` over 0..7.
    if (findings_ != nullptr) {
      if ((truth & valid_all_).is_false()) {
        report("range-dead-comparison",
               "comparison is always false over the declared ranges",
               e->line);
      } else if (valid_all_.implies(truth)) {
        report("range-dead-comparison",
               "comparison is always true over the declared ranges", e->line);
      }
    }
    SymValue v;
    v.add(bool_value(true), truth);
    v.add(bool_value(false), !truth);
    return v;
  }

  SymValue eval_arith(const ExprP& e, bool next_rail) {
    const SymValue a = eval(e->kids[0], next_rail);
    const SymValue b = eval(e->kids[1], next_rail);
    SymValue v;
    for (const auto& [va, ga] : a.alts) {
      for (const auto& [vb, gb] : b.alts) {
        const bdd::Bdd g = ga & gb;
        if (g.is_false()) continue;
        const std::int64_t ia = as_int(va, e->line);
        const std::int64_t ib = as_int(vb, e->line);
        std::int64_t r;
        switch (e->kind) {
          case EK::kAdd:
            r = ia + ib;
            break;
          case EK::kSub:
            r = ia - ib;
            break;
          case EK::kMul:
            r = ia * ib;
            break;
          case EK::kDiv:
            if (ib == 0) throw SmvError("division by zero", e->line);
            r = ia / ib;
            break;
          default:
            if (ib == 0) throw SmvError("mod by zero", e->line);
            r = ((ia % ib) + ib) % ib;  // mathematical modulus
            break;
        }
        v.add(int_value(r), g);
      }
    }
    return v;
  }

  SymValue eval_case(const ExprP& e, bool next_rail) {
    SymValue v;
    bdd::Bdd remaining = mgr().one();
    for (std::size_t i = 0; i + 1 < e->kids.size(); i += 2) {
      const bdd::Bdd cond =
          to_bdd(eval(e->kids[i], next_rail), e->kids[i]->line);
      const bdd::Bdd guard = cond & remaining;
      // Lint: an arm no valid state selects is dead weight -- either its
      // condition is unsatisfiable or earlier arms already cover it.  A
      // literal TRUE default is exempt: defensive defaults after an
      // exhaustive enumeration are idiomatic, not defects.
      if (findings_ != nullptr && e->kids[i]->kind != EK::kTrue &&
          (guard & valid_all_).is_false()) {
        report("unreachable-case-arm",
               "case arm is unreachable (condition never selects a state)",
               e->kids[i]->line);
      }
      remaining -= cond;
      if (guard.is_false()) continue;
      const SymValue branch = eval(e->kids[i + 1], next_rail);
      for (const auto& [val, g] : branch.alts) v.add(val, g & guard);
    }
    if (!(remaining & valid_all_).is_false()) {
      throw SmvError(
          "case is not exhaustive (add a 'TRUE : ...' default branch)",
          e->line);
    }
    return v;
  }

  bdd::Bdd to_bdd(const SymValue& v, std::size_t line) {
    bdd::Bdd out = mgr().zero();
    for (const auto& [val, g] : v.alts) {
      if (val.tag != SmvValue::Tag::kBool) {
        throw SmvError("expected a boolean expression", line);
      }
      if (val.b) out |= g;
    }
    return out;
  }

  std::int64_t as_int(const SmvValue& v, std::size_t line) {
    if (v.tag != SmvValue::Tag::kInt) {
      throw SmvError("expected an integer operand", line);
    }
    return v.i;
  }

  // -- sections ---------------------------------------------------------------

  void process_assigns() {
    std::unordered_set<std::string> has_init;
    std::unordered_set<std::string> has_next;
    std::unordered_set<std::string> has_current;
    std::unordered_set<std::string> pinned;
    for (const auto& a : prog_.assigns) {
      const auto it = slots_.find(a.var);
      if (it == slots_.end()) {
        throw SmvError("assignment to unknown variable '" + a.var + "'",
                       a.line);
      }
      auto& used = a.kind == Assign::Kind::kInit
                       ? has_init
                       : a.kind == Assign::Kind::kNext ? has_next
                                                       : has_current;
      if (!used.insert(a.var).second) {
        throw SmvError("duplicate assignment to '" + a.var + "'", a.line);
      }
      if (has_current.contains(a.var) &&
          (has_init.contains(a.var) || has_next.contains(a.var))) {
        throw SmvError("variable '" + a.var +
                           "' has both a combinational and an init/next "
                           "assignment",
                       a.line);
      }
      const VarSlot& slot = it->second;
      if (fold_ && foldable_.contains(a.var) &&
          a.kind != Assign::Kind::kCurrent) {
        // Dead-assignment elimination: the variable is provably constant,
        // so its init/next assignment relations collapse to rail pins
        // cur=c & next=c.  The pin reads nothing, which severs the
        // variable from every other conjunct's support (the whole point:
        // the cone-of-influence pass can now drop it independently).
        if (pinned.insert(a.var).second) {
          const SmvValue& c = consts_.at(a.var);
          const bdd::Bdd cur_pin = encode_value(slot, c, false, a.line);
          const bdd::Bdd next_pin = encode_value(slot, c, true, a.line);
          init_ &= cur_pin;
          sys().add_trans(cur_pin & next_pin);
          if (diag::enabled()) {
            diag::Registry::global().add_in("analyze", "const_folded", 1);
          }
        }
        continue;
      }
      if (a.kind == Assign::Kind::kCurrent) {
        // v := e  means v equals e in every state: constrain the initial
        // states and both rails of the transition relation.
        const bdd::Bdd eq_cur = assignment_relation(slot, a, false, false);
        const bdd::Bdd eq_next = assignment_relation(slot, a, true, true);
        init_ &= eq_cur;
        sys().add_trans(eq_cur & eq_next);
        continue;
      }
      const bool next_target = a.kind == Assign::Kind::kNext;
      const bdd::Bdd rel = assignment_relation(slot, a, false, next_target);
      if (next_target) {
        sys().add_trans(rel);
      } else {
        init_ &= rel;
      }
    }
  }

  /// Relation "slot-on-target-rail equals rhs-evaluated-on-eval-rail".
  bdd::Bdd assignment_relation(const VarSlot& slot, const Assign& a,
                               bool eval_rail, bool target_rail) {
    const SymValue rhs = eval(a.rhs, eval_rail);
    bdd::Bdd rel = mgr().zero();
    for (const auto& [val, g] : rhs.alts) {
      rel |= g & encode_value(slot, val, target_rail, a.line);
    }
    return rel;
  }

  bdd::Bdd encode_value(const VarSlot& slot, const SmvValue& val,
                        bool next_rail, std::size_t line) {
    if (slot.is_boolean) {
      if (val.tag != SmvValue::Tag::kBool) {
        throw SmvError("assigning non-boolean to boolean '" + slot.name + "'",
                       line);
      }
      const bdd::Bdd lit =
          next_rail ? sys().next(slot.bits[0]) : sys().cur(slot.bits[0]);
      return val.b ? lit : !lit;
    }
    for (std::size_t i = 0; i < slot.domain.size(); ++i) {
      if (value_eq(slot.domain[i], val)) return encode(slot, i, next_rail);
    }
    throw SmvError("value " + val.to_string() + " is not in the domain of '" +
                       slot.name + "'",
                   line);
  }

  void process_sections() {
    for (const auto& e : prog_.init) {
      init_ &= to_bdd(eval(e, false), e->line);
    }
    for (const auto& e : prog_.trans) {
      sys().add_trans(to_bdd(eval(e, false), e->line));
    }
    for (const auto& e : prog_.invar) {
      if (contains_temporal(e)) {
        throw SmvError("temporal operator in INVAR", e->line);
      }
      const bdd::Bdd cur = to_bdd(eval(e, false), e->line);
      const bdd::Bdd next = to_bdd(eval(e, true), e->line);
      init_ &= cur;
      sys().add_trans(cur & next);
    }
    for (const auto& e : prog_.fairness) {
      sys().add_fairness(to_bdd(eval(e, false), e->line));
    }
    // Boolean DEFINEs double as labels usable in CTL atoms.
    for (const auto& d : prog_.defines) {
      if (contains_temporal(d.rhs)) continue;
      const SymValue v = eval(d.rhs, false);
      const bool all_bool =
          std::all_of(v.alts.begin(), v.alts.end(), [](const auto& a) {
            return a.first.tag == SmvValue::Tag::kBool;
          });
      if (all_bool) sys().add_label(d.name, to_bdd(v, d.line));
    }
  }

  void process_specs() {
    for (std::size_t i = 0; i < prog_.specs.size(); ++i) {
      builder_.specs().push_back(lower_spec(prog_.specs[i]));
      builder_.spec_texts().push_back(prog_.spec_texts[i]);
    }
  }

  /// Lower a SPEC expression to a CTL formula whose atoms are synthesized
  /// labels bound to the maximal non-temporal subexpressions.
  ctl::Formula::Ptr lower_spec(const ExprP& e) {
    using F = ctl::Formula;
    if (!contains_temporal(e)) {
      const bdd::Bdd set = to_bdd(eval(e, false), e->line);
      const std::string name = "@spec" + std::to_string(next_atom_++);
      sys().add_label(name, set);
      return F::atom(name);
    }
    switch (e->kind) {
      case EK::kNot:
        return F::negate(lower_spec(e->kids[0]));
      case EK::kAnd:
        return F::conj(lower_spec(e->kids[0]), lower_spec(e->kids[1]));
      case EK::kOr:
        return F::disj(lower_spec(e->kids[0]), lower_spec(e->kids[1]));
      case EK::kXor:
        return F::exclusive_or(lower_spec(e->kids[0]), lower_spec(e->kids[1]));
      case EK::kImplies:
        return F::implies(lower_spec(e->kids[0]), lower_spec(e->kids[1]));
      case EK::kIff:
        return F::iff(lower_spec(e->kids[0]), lower_spec(e->kids[1]));
      case EK::kEX:
        return F::EX(lower_spec(e->kids[0]));
      case EK::kEF:
        return F::EF(lower_spec(e->kids[0]));
      case EK::kEG:
        return F::EG(lower_spec(e->kids[0]));
      case EK::kAX:
        return F::AX(lower_spec(e->kids[0]));
      case EK::kAF:
        return F::AF(lower_spec(e->kids[0]));
      case EK::kAG:
        return F::AG(lower_spec(e->kids[0]));
      case EK::kEU:
        return F::EU(lower_spec(e->kids[0]), lower_spec(e->kids[1]));
      case EK::kAU:
        return F::AU(lower_spec(e->kids[0]), lower_spec(e->kids[1]));
      default:
        throw SmvError("operator not allowed around temporal subformulas",
                       e->line);
    }
  }

  void finish() {
    // Domain validity: initial states valid, transitions preserve validity.
    // The next-rail constraint is emitted per variable (not as one merged
    // conjunct): a merged predicate's support would tie every
    // non-power-of-two variable together and glue otherwise independent
    // variables into one cone of influence.
    bdd::Bdd valid_cur = mgr().one();
    for (const auto& name : order_) {
      const VarSlot& slot = slots_.at(name);
      valid_cur &= valid(slot, false);
      const bdd::Bdd valid_next = valid(slot, true);
      if (!valid_next.is_true()) sys().add_trans(valid_next);
    }
    init_ &= valid_cur;
    if (sys().trans_parts().empty()) {
      // A model with no constraints at all: anything can happen.
      sys().add_trans(mgr().one());
    }
    sys().set_init(init_);
    sys().finalize();

    for (const auto& name : order_) {
      const VarSlot& slot = slots_.at(name);
      builder_.var_names().push_back(name);
      SmvModel::VarInfo info;
      info.name = name;
      info.domain = slot.domain;
      info.bits = slot.bits;
      info.is_boolean = slot.is_boolean;
      builder_.vars().push_back(std::move(info));
    }
  }

  const Module& prog_;
  std::vector<LintFinding>* findings_;
  bool fold_;
  SmvModel model_;
  SmvModelBuilder builder_{model_};
  std::map<std::string, VarSlot> slots_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, ExprP> defines_;
  std::unordered_set<std::string> expanding_;
  std::map<std::string, SmvValue> consts_;        // propagate_constants()
  std::map<std::string, std::size_t> const_lines_;
  std::unordered_set<std::string> foldable_;      // init+next provably const
  bdd::Bdd init_;
  bdd::Bdd valid_all_;
  std::size_t next_atom_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// SmvValue / SmvModel
// ---------------------------------------------------------------------------

std::string SmvValue::to_string() const {
  switch (tag) {
    case Tag::kBool:
      return b ? "TRUE" : "FALSE";
    case Tag::kInt:
      return std::to_string(i);
    case Tag::kSymbol:
      return symbol;
  }
  return "?";
}

SmvValue SmvModel::value_of(std::size_t index, const bdd::Bdd& state) const {
  const VarInfo& info = vars_.at(index);
  if (info.is_boolean) {
    SmvValue v;
    v.tag = SmvValue::Tag::kBool;
    v.b = state.intersects(system_->cur(info.bits[0]));
    return v;
  }
  std::size_t encoded = 0;
  for (std::size_t b = 0; b < info.bits.size(); ++b) {
    if (state.intersects(system_->cur(info.bits[b]))) encoded |= 1u << b;
  }
  if (encoded >= info.domain.size()) {
    SmvValue v;
    v.tag = SmvValue::Tag::kSymbol;
    v.symbol = "<invalid>";
    return v;
  }
  return info.domain[encoded];
}

std::string SmvModel::state_string(const bdd::Bdd& state,
                                   const bdd::Bdd& diff_from) const {
  std::string out;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const SmvValue v = value_of(i, state);
    if (!diff_from.is_null() && v == value_of(i, diff_from)) continue;
    if (!out.empty()) out += ' ';
    out += vars_[i].name + '=' + v.to_string();
  }
  if (out.empty()) out = "(unchanged)";
  return out;
}

std::string SmvModel::trace_string(const std::vector<bdd::Bdd>& prefix,
                                   const std::vector<bdd::Bdd>& cycle) const {
  std::string out;
  bdd::Bdd prev;
  std::size_t step = 0;
  auto emit = [&](const bdd::Bdd& s) {
    out += "  state " + std::to_string(step++) + ": " + state_string(s, prev) +
           "\n";
    prev = s;
  };
  for (const auto& s : prefix) emit(s);
  if (!cycle.empty()) {
    out += "  -- loop starts here --\n";
    for (const auto& s : cycle) emit(s);
  }
  return out;
}

SmvModel compile(const std::string& source) { return compile(source, {}); }

SmvModel compile(const std::string& source, const CompileOptions& options) {
  const detail::Program prog = detail::parse_program(source);
  const detail::Module flat = detail::flatten_program(prog);
  Compiler compiler(flat, options);
  return compiler.run();
}

}  // namespace symcex::smv
