// SymCeX -- internal AST for the mini-SMV language (see smv.hpp).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "smv/smv.hpp"

namespace symcex::smv::detail {

enum class EK {
  // leaves
  kInt,
  kTrue,
  kFalse,
  kIdent,
  kNext,  // next(sub-expression), one child
  // unary
  kNeg,
  kNot,
  // binary boolean
  kAnd,
  kOr,
  kXor,
  kImplies,
  kIff,
  // binary comparison
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // binary arithmetic
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  // composite
  kSet,   // children = members
  kCase,  // children = cond0, val0, cond1, val1, ...
  // temporal (SPEC context only)
  kEX,
  kEF,
  kEG,
  kAX,
  kAF,
  kAG,
  kEU,
  kAU,
};

struct Expr;
using ExprP = std::shared_ptr<const Expr>;

struct Expr {
  EK kind;
  std::int64_t ival = 0;
  std::string name;
  std::vector<ExprP> kids;
  std::size_t line = 0;

  static ExprP make(EK k, std::size_t line, std::vector<ExprP> kids = {}) {
    auto e = std::make_shared<Expr>();
    e->kind = k;
    e->line = line;
    e->kids = std::move(kids);
    return e;
  }
};

struct VarDecl {
  enum class Type { kBoolean, kDomain, kInstance };
  std::string name;
  Type type = Type::kBoolean;
  std::vector<SmvValue> domain;   // for kDomain (enum or range)
  std::string module;             // for kInstance
  std::vector<ExprP> arguments;   // for kInstance
  std::size_t line = 0;
};

struct Assign {
  enum class Kind {
    kInit,     // init(v) := e
    kNext,     // next(v) := e
    kCurrent,  // v := e  (combinational: v equals e in every state)
  };
  Kind kind;
  std::string var;
  ExprP rhs;
  std::size_t line = 0;
};

struct Define {
  std::string name;
  ExprP rhs;
  std::size_t line = 0;
};

/// One MODULE's body.
struct Module {
  std::string name;
  std::vector<std::string> params;
  std::size_t line = 0;
  std::vector<VarDecl> vars;
  std::vector<Assign> assigns;
  std::vector<Define> defines;
  std::vector<ExprP> trans;
  std::vector<ExprP> init;
  std::vector<ExprP> invar;
  std::vector<ExprP> fairness;
  std::vector<ExprP> specs;
  std::vector<std::string> spec_texts;
};

struct Program {
  std::vector<Module> modules;  // "main" must be among them
};

/// Parse SMV source into a Program (syntax only).  Throws SmvError.
[[nodiscard]] Program parse_program(const std::string& source);

/// Inline every module instance into one flat module (names prefixed with
/// the instance path, parameters substituted by their argument
/// expressions).  Throws SmvError on unknown modules, arity mismatches or
/// cyclic instantiation.
[[nodiscard]] Module flatten_program(const Program& program);

}  // namespace symcex::smv::detail
