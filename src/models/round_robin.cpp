#include <memory>
#include <string>

#include "models/models.hpp"
#include "ts/field.hpp"

namespace symcex::models {

std::unique_ptr<ts::TransitionSystem> round_robin_arbiter(
    const RoundRobinOptions& options) {
  const std::uint32_t n = options.users;
  if (n < 2 || n > 32) {
    throw std::invalid_argument("round_robin_arbiter: users must be in 2..32");
  }
  auto m = std::make_unique<ts::TransitionSystem>();
  std::vector<ts::VarId> req;
  req.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    req.push_back(m->add_var("req" + std::to_string(i)));
  }
  ts::Field token(*m, "tok", n);

  bdd::Bdd init = token.eq(0);
  for (const ts::VarId r : req) init &= !m->cur(r);
  m->set_init(init);

  // The grant is combinational: the token holder is served iff requesting.
  auto grant = [&](std::uint32_t i) {
    return token.eq(i) & m->cur(req[i]);
  };

  // Users: four-phase -- raise while idle, drop once granted, or hold.
  // The fairness constraint keeps users from camping on the grant.
  for (std::uint32_t i = 0; i < n; ++i) {
    const bdd::Bdd hold = !(m->next(req[i]) ^ m->cur(req[i]));
    const bdd::Bdd raise = !m->cur(req[i]) & m->next(req[i]);
    const bdd::Bdd release = grant(i) & !m->next(req[i]);
    m->add_trans(hold | raise | release);
    m->add_fairness(!grant(i));
  }

  // Token: holds while the holder is requesting (it is being served),
  // advances otherwise -- unless the rotate=false bug freezes it.
  bdd::Bdd holder_requests = m->manager().zero();
  for (std::uint32_t i = 0; i < n; ++i) {
    holder_requests |= token.eq(i) & m->cur(req[i]);
  }
  if (options.rotate) {
    m->add_trans((holder_requests & token.unchanged()) |
                 (!holder_requests & token.increment_mod()));
  } else {
    m->add_trans(token.unchanged());
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    m->add_label("req" + std::to_string(i), m->cur(req[i]));
    m->add_label("gnt" + std::to_string(i), grant(i));
    m->add_label("tok" + std::to_string(i), token.eq(i));
  }
  m->finalize();
  return m;
}

}  // namespace symcex::models
