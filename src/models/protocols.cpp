#include <memory>
#include <string>

#include "models/models.hpp"
#include "ts/field.hpp"

namespace symcex::models {

namespace {

// Peterson process states.
constexpr std::uint32_t kIdle = 0;
constexpr std::uint32_t kTry = 1;
constexpr std::uint32_t kCrit = 2;

// Philosopher states.
constexpr std::uint32_t kThink = 0;
constexpr std::uint32_t kHungry = 1;
constexpr std::uint32_t kEat = 2;

}  // namespace

std::unique_ptr<ts::TransitionSystem> peterson(const PetersonOptions& options) {
  auto m = std::make_unique<ts::TransitionSystem>();
  ts::Field pc0(*m, "pc0", 3);
  ts::Field pc1(*m, "pc1", 3);
  const ts::VarId turn = m->add_var("turn");   // whose turn to enter
  const ts::VarId sched = m->add_var("sched");  // which process moved last

  m->set_init(pc0.eq(kIdle) & pc1.eq(kIdle) & !m->cur(turn) & !m->cur(sched));

  auto moves = [&](const ts::Field& me, const ts::Field& other,
                   bool turn_value) {
    auto& mm = *m;
    const bdd::Bdd turn_mine =
        turn_value ? mm.cur(turn) : !mm.cur(turn);
    // idle -> idle (the process may never want the resource)
    bdd::Bdd step = me.eq(kIdle, false) & me.eq(kIdle, true) &
                    !(mm.next(turn) ^ mm.cur(turn));
    // idle -> try, ceding the turn to the other process
    step |= me.eq(kIdle, false) & me.eq(kTry, true) &
            (turn_value ? !mm.next(turn) : mm.next(turn));
    // try -> crit when the other process is idle or it is our turn
    // (the buggy "polite" variant demands the other process be idle,
    //  which livelocks when both are trying).
    const bdd::Bdd gate = options.buggy
                              ? other.eq(kIdle, false)
                              : (other.eq(kIdle, false) | turn_mine);
    step |= me.eq(kTry, false) & gate & me.eq(kCrit, true) &
            !(mm.next(turn) ^ mm.cur(turn));
    // try -> try (busy wait) when blocked
    step |= me.eq(kTry, false) & !gate & me.eq(kTry, true) &
            !(mm.next(turn) ^ mm.cur(turn));
    // crit -> idle
    step |= me.eq(kCrit, false) & me.eq(kIdle, true) &
            !(mm.next(turn) ^ mm.cur(turn));
    return step & other.unchanged();
  };

  // Interleaving: exactly one process moves per step; "sched" records it.
  const bdd::Bdd move0 = moves(pc0, pc1, false) & !m->next(sched);
  const bdd::Bdd move1 = moves(pc1, pc0, true) & m->next(sched);
  m->add_trans(move0 | move1);

  // Weak scheduling fairness: each process runs infinitely often.
  m->add_fairness(!m->cur(sched));
  m->add_fairness(m->cur(sched));

  m->add_label("idle0", pc0.eq(kIdle));
  m->add_label("idle1", pc1.eq(kIdle));
  m->add_label("try0", pc0.eq(kTry));
  m->add_label("try1", pc1.eq(kTry));
  m->add_label("crit0", pc0.eq(kCrit));
  m->add_label("crit1", pc1.eq(kCrit));
  m->finalize();
  return m;
}

std::unique_ptr<ts::TransitionSystem> dining_philosophers(
    const PhilosophersOptions& options) {
  const std::uint32_t n = options.count;
  if (n < 2 || n > 16) {
    throw std::invalid_argument("dining_philosophers: count must be in 2..16");
  }
  auto m = std::make_unique<ts::TransitionSystem>();
  std::vector<ts::Field> phil;
  phil.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    phil.emplace_back(*m, "p" + std::to_string(i), 3);
  }
  ts::Field moved(*m, "moved", n < 2 ? 2 : n);

  bdd::Bdd init = moved.eq(0);
  for (const auto& p : phil) init &= p.eq(kThink);
  m->set_init(init);

  bdd::Bdd trans = m->manager().zero();
  for (std::uint32_t i = 0; i < n; ++i) {
    const ts::Field& me = phil[i];
    const ts::Field& left = phil[(i + n - 1) % n];
    const ts::Field& right = phil[(i + 1) % n];
    // think -> hungry | think ; hungry -> eat (neighbours not eating) |
    // hungry ; eat -> think.
    bdd::Bdd step = me.eq(kThink, false) &
                    (me.eq(kHungry, true) | me.eq(kThink, true));
    step |= me.eq(kHungry, false) & !left.eq(kEat, false) &
            !right.eq(kEat, false) & me.eq(kEat, true);
    step |= me.eq(kHungry, false) & me.eq(kHungry, true);
    step |= me.eq(kEat, false) & me.eq(kThink, true);
    bdd::Bdd frame = m->manager().one();
    for (std::uint32_t j = 0; j < n; ++j) {
      if (j != i) frame &= phil[j].unchanged();
    }
    trans |= step & frame & moved.eq(i, true);
  }
  m->add_trans(trans);

  if (options.fair_scheduling) {
    for (std::uint32_t i = 0; i < n; ++i) m->add_fairness(moved.eq(i));
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    m->add_label("think" + std::to_string(i), phil[i].eq(kThink));
    m->add_label("hungry" + std::to_string(i), phil[i].eq(kHungry));
    m->add_label("eat" + std::to_string(i), phil[i].eq(kEat));
  }
  m->finalize();
  return m;
}

}  // namespace symcex::models
