#include <memory>

#include "models/models.hpp"
#include "ts/field.hpp"

namespace symcex::models {

std::unique_ptr<ts::TransitionSystem> scc_chain(const SccChainOptions& options) {
  const std::uint32_t m_len = options.chain_len;
  const std::uint32_t c_len = options.cycle_len;
  if (c_len < 1) {
    throw std::invalid_argument("scc_chain: cycle_len must be >= 1");
  }
  const std::uint32_t total = m_len + c_len;
  auto ts = std::make_unique<ts::TransitionSystem>();
  ts::Field v(*ts, "v", total < 2 ? 2 : total);

  ts->set_init(v.eq(options.start_in_cycle ? m_len : 0));

  // Chain 0 -> 1 -> ... -> m_len-1 -> m_len, then the terminal cycle
  // m_len -> ... -> total-1 -> m_len.  Every state has exactly one
  // successor; the only nontrivial SCC is the terminal cycle, so the
  // EG-true witness construction must descend the whole chain via
  // restarts when it starts at the head (Figure 2), and closes on the
  // first attempt when it starts inside the cycle (Figure 1).
  bdd::Bdd trans = ts->manager().zero();
  for (std::uint32_t i = 0; i + 1 < total; ++i) {
    trans |= v.eq(i, false) & v.eq(i + 1, true);
  }
  trans |= v.eq(total - 1, false) & v.eq(m_len, true);
  ts->add_trans(trans);

  if (options.fairness_in_cycle) {
    // Mark one cycle state; the onion rings then lead straight to it.
    ts->add_fairness(v.eq(m_len + c_len / 2));
  }

  ts->add_label("head", v.eq(0));
  bdd::Bdd in_cycle = ts->manager().zero();
  for (std::uint32_t i = m_len; i < total; ++i) in_cycle |= v.eq(i);
  ts->add_label("in_cycle", in_cycle);
  ts->add_label("mark", v.eq(m_len + c_len / 2));
  ts->finalize();
  return ts;
}

}  // namespace symcex::models
