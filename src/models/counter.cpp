#include <memory>

#include "models/models.hpp"

namespace symcex::models {

std::unique_ptr<ts::TransitionSystem> counter(const CounterOptions& options) {
  if (options.width == 0 || options.width > 62) {
    throw std::invalid_argument("counter: width must be in 1..62");
  }
  if (options.modulus != 0 &&
      (options.modulus < 2 ||
       options.modulus > (std::uint64_t{1} << options.width))) {
    throw std::invalid_argument("counter: modulus must be in 2..2^width");
  }
  auto m = std::make_unique<ts::TransitionSystem>();
  const std::vector<ts::VarId> bits = m->add_vector("b", options.width);
  ts::VarId ticked = 0;
  if (options.stutter) ticked = m->add_var("ticked");

  bdd::Bdd init = m->manager().one();
  for (const ts::VarId b : bits) init &= !m->cur(b);
  if (options.stutter) init &= !m->cur(ticked);
  m->set_init(init);

  // Increment relation: b0' = !b0, b_i' = b_i xor (carry of lower bits).
  bdd::Bdd count = m->manager().one();
  bdd::Bdd carry = m->manager().one();
  for (const ts::VarId b : bits) {
    count &= !(m->next(b) ^ (m->cur(b) ^ carry));
    carry &= m->cur(b);
  }
  if (options.modulus != 0) {
    // Wrap at modulus-1: from that value go to 0; every other value
    // (including the unreachable ones >= modulus) increments as usual, so
    // the relation stays total and values outside 0..modulus-1 form a
    // genuine don't-care region.
    bdd::Bdd at_wrap = m->manager().one();
    bdd::Bdd to_zero = m->manager().one();
    for (std::uint32_t i = 0; i < options.width; ++i) {
      const bool bit = ((options.modulus - 1) >> i) & 1;
      at_wrap &= bit ? m->cur(bits[i]) : !m->cur(bits[i]);
      to_zero &= !m->next(bits[i]);
    }
    count = (at_wrap & to_zero) | (!at_wrap & count);
  }
  if (options.stutter) {
    bdd::Bdd hold = m->manager().one();
    for (const ts::VarId b : bits) hold &= !(m->next(b) ^ m->cur(b));
    // "ticked" records whether the last step counted.
    m->add_trans((count & m->next(ticked)) | (hold & !m->next(ticked)));
    if (options.fair_ticking) m->add_fairness(m->cur(ticked));
  } else {
    m->add_trans(count);
  }

  bdd::Bdd zero = m->manager().one();
  bdd::Bdd max = m->manager().one();
  for (const ts::VarId b : bits) {
    zero &= !m->cur(b);
    max &= m->cur(b);
  }
  m->add_label("zero", zero);
  m->add_label("max", max);
  if (options.modulus != 0) {
    // The last reachable value (modulus-1); "max" stays the all-ones
    // pattern, which is unreachable when modulus < 2^width.
    bdd::Bdd wrap = m->manager().one();
    for (std::uint32_t i = 0; i < options.width; ++i) {
      const bool bit = ((options.modulus - 1) >> i) & 1;
      wrap &= bit ? m->cur(bits[i]) : !m->cur(bits[i]);
    }
    m->add_label("wrap", wrap);
  }
  if (options.stutter) m->add_label("ticked", m->cur(ticked));
  m->finalize();
  return m;
}

std::unique_ptr<ts::TransitionSystem> counter_bank(
    const CounterBankOptions& options) {
  if (options.banks == 0 || options.width == 0 ||
      options.banks * options.width > 400) {
    throw std::invalid_argument("counter_bank: bad dimensions");
  }
  auto m = std::make_unique<ts::TransitionSystem>();
  std::vector<std::vector<ts::VarId>> banks;
  banks.reserve(options.banks);
  for (std::uint32_t k = 0; k < options.banks; ++k) {
    banks.push_back(
        m->add_vector("c" + std::to_string(k), options.width));
  }
  bdd::Bdd init = m->manager().one();
  for (const auto& bits : banks) {
    for (const ts::VarId b : bits) init &= !m->cur(b);
  }
  m->set_init(init);
  // One conjunct per bank: hold or increment (independent choices give a
  // genuinely partitioned relation with 2^banks joint transitions).
  for (const auto& bits : banks) {
    bdd::Bdd hold = m->manager().one();
    bdd::Bdd inc = m->manager().one();
    bdd::Bdd carry = m->manager().one();
    for (const ts::VarId b : bits) {
      hold &= !(m->next(b) ^ m->cur(b));
      inc &= !(m->next(b) ^ (m->cur(b) ^ carry));
      carry &= m->cur(b);
    }
    m->add_trans(hold | inc);
  }
  bdd::Bdd all_zero = m->manager().one();
  bdd::Bdd all_max = m->manager().one();
  bdd::Bdd zero0 = m->manager().one();
  bdd::Bdd max0 = m->manager().one();
  for (std::uint32_t k = 0; k < options.banks; ++k) {
    for (const ts::VarId b : banks[k]) {
      all_zero &= !m->cur(b);
      all_max &= m->cur(b);
      if (k == 0) {
        zero0 &= !m->cur(b);
        max0 &= m->cur(b);
      }
    }
  }
  m->add_label("all_zero", all_zero);
  m->add_label("all_max", all_max);
  m->add_label("zero0", zero0);
  m->add_label("max0", max0);
  m->finalize();
  return m;
}

}  // namespace symcex::models
