// SymCeX -- the model zoo.
//
// Programmatic builders for the transition systems the benchmarks and
// examples run on.  Each returns a finalized TransitionSystem with labels
// and (where appropriate) fairness constraints already registered, so
// callers can immediately check specs by name.
//
//   * seitz_arbiter  -- a speed-independent asynchronous arbiter in the
//     spirit of Figure 3 / Section 6's case study: gate-level model where
//     every gate has an arbitrary delay and a fairness constraint saying
//     it eventually responds.  The default (buggy, fixed-priority ME)
//     variant violates AG(r1 -> AF a1) with a fair lasso counterexample,
//     reproducing the qualitative result the paper reports; the fair_me
//     variant (alternating ME) satisfies it.  See DESIGN.md on the
//     substitution for the exact 1995 netlist.
//   * counter        -- n-bit synchronous counter (optionally stuttering).
//   * peterson       -- two-process mutual exclusion; the buggy variant
//     ("polite" protocol without a turn) livelocks.
//   * dining_philosophers -- classic starvation example on a ring.
//   * scc_chain      -- synthetic structure whose EG-witness construction
//     exercises the Figure 1 (single SCC) and Figure 2 (restart descent
//     through the SCC DAG) behaviours on demand.

#pragma once

#include <cstdint>
#include <memory>

#include "ts/transition_system.hpp"

namespace symcex::models {

struct ArbiterOptions {
  /// false: fixed-priority ME element (starves user 1 -- the bug);
  /// true: alternating ME element (liveness holds).
  bool fair_me = false;
  /// Model the shared-server handshake chain (sr/sa gates) behind the ME.
  bool with_server = true;
};

/// Gate-level speed-independent arbiter with per-gate fairness.
/// Labels: r1, r2 (user requests), g1, g2 (ME grants), a1, a2 (user acks),
/// and with_server also sr, sa.  Specs of interest:
///   AG (r1 -> AF a1)   -- FALSE for fair_me=false, TRUE for fair_me=true
///   AG !(g1 & g2)      -- TRUE (the ME exclusivity invariant)
[[nodiscard]] std::unique_ptr<ts::TransitionSystem> seitz_arbiter(
    const ArbiterOptions& options = {});

struct CounterOptions {
  std::uint32_t width = 4;
  /// Allow stutter steps (the counter may hold); adds the "ticked" label
  /// and, if fair_ticking, a fairness constraint GF ticked.
  bool stutter = false;
  bool fair_ticking = false;
  /// Count 0..modulus-1 and wrap there instead of at 2^width (0 = full
  /// range).  With modulus < 2^width the values modulus..2^width-1 still
  /// step (plain increment) but are unreachable from zero, giving the
  /// counter a proper reachable care set -- the shape the don't-care
  /// simplification benchmarks need.  Must be >= 2 when nonzero.
  std::uint64_t modulus = 0;
};

/// n-bit wrap-around counter.  Labels: zero, max, ticked (if stutter).
[[nodiscard]] std::unique_ptr<ts::TransitionSystem> counter(
    const CounterOptions& options = {});

struct CounterBankOptions {
  std::uint32_t banks = 16;
  std::uint32_t width = 4;
};

/// A bank of independent counters stepping synchronously, each free to
/// hold or increment every cycle.  The state space is 2^(banks*width) --
/// the shape behind the paper's "more than 10^16 states" capability claim
/// [3, 11]: enormous state count, small BDDs, small diameter.
/// Labels: all_zero, all_max, zero0 (bank 0 at zero), max0.
[[nodiscard]] std::unique_ptr<ts::TransitionSystem> counter_bank(
    const CounterBankOptions& options = {});

struct PetersonOptions {
  /// true: drop the turn-based arbitration ("polite" protocol): two
  /// waiting processes block each other forever -- AG(try -> AF crit)
  /// fails with a fair lasso.
  bool buggy = false;
};

/// Two-process Peterson-style mutual exclusion with an explicit scheduler
/// variable and fairness GF(sched = i) per process.
/// Labels: try0, try1, crit0, crit1, idle0, idle1.
[[nodiscard]] std::unique_ptr<ts::TransitionSystem> peterson(
    const PetersonOptions& options = {});

struct PhilosophersOptions {
  std::uint32_t count = 3;
  /// Add fairness GF(moved = i) for each philosopher.
  bool fair_scheduling = true;
};

/// Dining philosophers on a ring (states think/hungry/eat per philosopher;
/// a philosopher may eat only if no neighbour eats).
/// Labels: think<i>, hungry<i>, eat<i>.  AG !(eat_i & eat_{i+1}) holds;
/// AG(hungry_i -> AF eat_i) fails (starvation) even under fair scheduling.
[[nodiscard]] std::unique_ptr<ts::TransitionSystem> dining_philosophers(
    const PhilosophersOptions& options = {});

struct RoundRobinOptions {
  std::uint32_t users = 4;
  /// Grant the token holder only while it requests; rotate otherwise.
  /// false reproduces the camping bug: the holder keeps the token forever.
  bool rotate = true;
};

/// A scalable n-user round-robin arbiter: a token selects whose request is
/// granted; the token advances (under fairness) whenever the holder is not
/// being served.  Labels: req<i>, gnt<i>, tok<i>.
/// AG (req_i -> AF gnt_i) holds with rotate=true, fails with rotate=false.
[[nodiscard]] std::unique_ptr<ts::TransitionSystem> round_robin_arbiter(
    const RoundRobinOptions& options = {});

struct AbpOptions {
  /// Register the fairness constraints GF(deliver action) and
  /// GF(ack-consumption action); without them the lossy channels may drop
  /// everything forever and the liveness spec fails with a loss lasso.
  bool fair_channels = true;
};

/// Alternating-bit protocol over lossy channels: a retransmitting sender,
/// a receiver that re-acknowledges duplicates, and message/ack channels
/// that may lose.  Labels: accept (the receiver just accepted fresh
/// data), msg_empty, ack_empty, sending0/sending1 (sender's current bit),
/// act_send / act_recv / act_getack / act_lose.
/// Specs of interest:
///   AG EF accept            -- always recoverable (TRUE)
///   AG AF accept            -- progress; TRUE iff fair_channels
[[nodiscard]] std::unique_ptr<ts::TransitionSystem> abp(
    const AbpOptions& options = {});

struct SccChainOptions {
  /// Number of transient states before the terminal cycle.  Each failed
  /// cycle closure restarts one state further down this chain, so the
  /// EG-true witness performs ~chain_len restarts (Figure 2).
  std::uint32_t chain_len = 4;
  /// Length of the terminal cycle (the only nontrivial SCC).
  std::uint32_t cycle_len = 4;
  /// Start inside the cycle instead of at the chain head: the witness then
  /// closes on the first attempt with zero restarts (Figure 1).
  bool start_in_cycle = false;
  /// Place one fairness constraint on a state of the terminal cycle; the
  /// onion rings then steer the construction directly to the cycle.
  bool fairness_in_cycle = false;
};

/// Synthetic SCC chain.  Labels: head, in_cycle, mark (the fairness state).
[[nodiscard]] std::unique_ptr<ts::TransitionSystem> scc_chain(
    const SccChainOptions& options = {});

}  // namespace symcex::models
