#include <memory>

#include "models/models.hpp"

namespace symcex::models {

namespace {

/// Speed-independent gate: the output variable may hold its value or move
/// to the combinational target, and fairness demands it is stable (equal
/// to its target) infinitely often -- i.e. no gate lags forever.
void gate(ts::TransitionSystem& m, ts::VarId out, const bdd::Bdd& target) {
  const bdd::Bdd hold = !(m.next(out) ^ m.cur(out));
  const bdd::Bdd fire = !(m.next(out) ^ target);
  m.add_trans(hold | fire);
  m.add_fairness(!(m.cur(out) ^ target));
}

/// Four-phase handshake environment: the user may flip its request only
/// when request and acknowledge agree (raise when both low, drop when both
/// high), and may also always hold.  The fairness constraint says the user
/// does not camp on the resource -- infinitely often it is not in the
/// "granted and still requesting" phase, so acquisitions complete.
/// (Without it even a fair arbiter cannot guarantee liveness: the
/// environment could hold the grant forever.)
void user(ts::TransitionSystem& m, ts::VarId req, ts::VarId ack) {
  const bdd::Bdd hold = !(m.next(req) ^ m.cur(req));
  const bdd::Bdd flip =
      !(m.cur(req) ^ m.cur(ack)) & (m.next(req) ^ m.cur(req));
  m.add_trans(hold | flip);
  m.add_fairness(!(m.cur(req) & m.cur(ack)));
}

}  // namespace

std::unique_ptr<ts::TransitionSystem> seitz_arbiter(
    const ArbiterOptions& options) {
  auto m = std::make_unique<ts::TransitionSystem>();

  const ts::VarId r1 = m->add_var("r1");
  const ts::VarId r2 = m->add_var("r2");
  const ts::VarId g1 = m->add_var("g1");
  const ts::VarId g2 = m->add_var("g2");
  ts::VarId sr = 0;
  ts::VarId sa = 0;
  if (options.with_server) {
    sr = m->add_var("sr");
    sa = m->add_var("sa");
  }
  const ts::VarId a1 = m->add_var("a1");
  const ts::VarId a2 = m->add_var("a2");
  ts::VarId last1 = 0;
  if (options.fair_me) last1 = m->add_var("last1");

  // All signals low initially (the quiescent state).
  bdd::Bdd init = m->manager().one();
  for (ts::VarId v = 0; v < m->num_state_vars(); ++v) init &= !m->cur(v);
  m->set_init(init);

  // Users.
  user(*m, r1, a1);
  user(*m, r2, a2);

  // ME element: two sticky grant outputs with built-in mutual exclusion.
  // A grant, once given, is held until its request falls (the four-phase
  // discipline); a free grant may rise when the side requests, the other
  // grant is low, and the side has priority.
  const bdd::Bdd sticky1 = m->cur(g1) & m->cur(r1);
  const bdd::Bdd sticky2 = m->cur(g2) & m->cur(r2);
  bdd::Bdd prio1;
  bdd::Bdd prio2;
  if (!options.fair_me) {
    // Fixed priority: side 2 wins whenever it requests.  This is the bug:
    // user 1 can starve behind a recycling user 2.
    prio1 = !m->cur(r2);
    prio2 = m->manager().one();
  } else {
    // Alternating priority: the side granted most recently yields.
    prio1 = !m->cur(r2) | !m->cur(last1);
    prio2 = !m->cur(r1) | m->cur(last1);
  }
  const bdd::Bdd g1_target =
      sticky1 | (m->cur(r1) & !m->cur(g2) & !m->cur(g1) & prio1);
  const bdd::Bdd g2_target =
      sticky2 | (m->cur(r2) & !m->cur(g1) & !m->cur(g2) & prio2);
  gate(*m, g1, g1_target);
  gate(*m, g2, g2_target);
  // The ME element never raises both grants together.
  m->add_trans(!(m->next(g1) & m->next(g2)));

  if (options.fair_me) {
    // last1 records which side's grant rose most recently.
    const bdd::Bdd rise1 = !m->cur(g1) & m->next(g1);
    const bdd::Bdd rise2 = !m->cur(g2) & m->next(g2);
    const bdd::Bdd hold = !(m->next(last1) ^ m->cur(last1));
    m->add_trans((rise1 & m->next(last1)) | (rise2 & !m->next(last1)) |
                 (!rise1 & !rise2 & hold));
  }

  // Acknowledge path.
  if (options.with_server) {
    // OR gate into a shared server, then per-side AND gates.
    gate(*m, sr, m->cur(g1) | m->cur(g2));
    gate(*m, sa, m->cur(sr));
    gate(*m, a1, m->cur(g1) & m->cur(sa));
    gate(*m, a2, m->cur(g2) & m->cur(sa));
  } else {
    gate(*m, a1, m->cur(g1));
    gate(*m, a2, m->cur(g2));
  }

  for (const char* name : {"r1", "r2", "g1", "g2", "a1", "a2"}) {
    m->add_label(name, m->cur(*m->find_var(name)));
  }
  if (options.with_server) {
    m->add_label("sr", m->cur(sr));
    m->add_label("sa", m->cur(sa));
  }
  m->finalize();
  return m;
}

}  // namespace symcex::models
