#include <memory>

#include "models/models.hpp"
#include "ts/field.hpp"

namespace symcex::models {

namespace {

// Channel contents.
constexpr std::uint32_t kEmpty = 0;
constexpr std::uint32_t kBit0 = 1;
constexpr std::uint32_t kBit1 = 2;

// Actions (recorded each step for fairness and labelling).
constexpr std::uint32_t kSend = 0;
constexpr std::uint32_t kLoseMsg = 1;
constexpr std::uint32_t kRecv = 2;
constexpr std::uint32_t kLoseAck = 3;
constexpr std::uint32_t kGetAck = 4;

}  // namespace

std::unique_ptr<ts::TransitionSystem> abp(const AbpOptions& options) {
  auto m = std::make_unique<ts::TransitionSystem>();
  const ts::VarId s_bit = m->add_var("s_bit");   // bit being transmitted
  const ts::VarId r_exp = m->add_var("r_exp");   // bit the receiver expects
  const ts::VarId acc = m->add_var("accept");    // fresh data just accepted
  ts::Field msg(*m, "msg", 3);
  ts::Field ack(*m, "ack", 3);
  ts::Field act(*m, "act", 5);

  m->set_init(!m->cur(s_bit) & !m->cur(r_exp) & !m->cur(acc) &
              msg.eq(kEmpty) & ack.eq(kEmpty) & act.eq(kSend));

  auto hold = [&](ts::VarId v) { return !(m->next(v) ^ m->cur(v)); };
  const bdd::Bdd msg_of_sbit =        // msg' carries the sender's bit
      (!m->cur(s_bit) & msg.eq(kBit0, true)) |
      (m->cur(s_bit) & msg.eq(kBit1, true));

  bdd::Bdd trans = m->manager().zero();

  // SEND: the sender (re)transmits its current bit; always enabled.
  trans |= act.eq(kSend, true) & msg_of_sbit & ack.unchanged() &
           hold(s_bit) & hold(r_exp) & !m->next(acc);

  // LOSE-MSG: the message channel drops its content.
  trans |= act.eq(kLoseMsg, true) & !msg.eq(kEmpty) & msg.eq(kEmpty, true) &
           ack.unchanged() & hold(s_bit) & hold(r_exp) & !m->next(acc);

  // RECV: the receiver consumes the message.  A fresh message (bit ==
  // expected) is accepted (accept' high, expectation flips); a duplicate
  // is dropped.  Either way the received bit is (re-)acknowledged,
  // overwriting the ack channel.
  {
    const bdd::Bdd got0 = msg.eq(kBit0);
    const bdd::Bdd got1 = msg.eq(kBit1);
    const bdd::Bdd bit_matches =
        (got0 & !m->cur(r_exp)) | (got1 & m->cur(r_exp));
    const bdd::Bdd ack_back =
        (got0 & ack.eq(kBit0, true)) | (got1 & ack.eq(kBit1, true));
    const bdd::Bdd fresh = bit_matches & (m->next(r_exp) ^ m->cur(r_exp)) &
                           m->next(acc);
    const bdd::Bdd dup = !bit_matches & hold(r_exp) & !m->next(acc);
    trans |= act.eq(kRecv, true) & !msg.eq(kEmpty) & msg.eq(kEmpty, true) &
             ack_back & hold(s_bit) & (fresh | dup);
  }

  // LOSE-ACK: the ack channel drops its content.
  trans |= act.eq(kLoseAck, true) & !ack.eq(kEmpty) & ack.eq(kEmpty, true) &
           msg.unchanged() & hold(s_bit) & hold(r_exp) & !m->next(acc);

  // GET-ACK: the sender consumes an ack; an ack for the current bit
  // completes the transfer and the sender moves to the next bit.
  {
    const bdd::Bdd ack0 = ack.eq(kBit0);
    const bdd::Bdd ack1 = ack.eq(kBit1);
    const bdd::Bdd matches = (ack0 & !m->cur(s_bit)) | (ack1 & m->cur(s_bit));
    const bdd::Bdd advance = matches & (m->next(s_bit) ^ m->cur(s_bit));
    const bdd::Bdd stale = !matches & hold(s_bit);
    trans |= act.eq(kGetAck, true) & !ack.eq(kEmpty) & ack.eq(kEmpty, true) &
             msg.unchanged() & hold(r_exp) & !m->next(acc) &
             (advance | stale);
  }

  m->add_trans(trans);

  if (options.fair_channels) {
    // The channels cannot lose everything forever: delivery and ack
    // consumption happen infinitely often on fair paths.
    m->add_fairness(act.eq(kRecv));
    m->add_fairness(act.eq(kGetAck));
  }

  m->add_label("accept", m->cur(acc));
  m->add_label("msg_empty", msg.eq(kEmpty));
  m->add_label("ack_empty", ack.eq(kEmpty));
  m->add_label("sending0", !m->cur(s_bit));
  m->add_label("sending1", m->cur(s_bit));
  m->add_label("act_send", act.eq(kSend));
  m->add_label("act_recv", act.eq(kRecv));
  m->add_label("act_getack", act.eq(kGetAck));
  m->add_label("act_lose", act.eq(kLoseMsg) | act.eq(kLoseAck));
  m->finalize();
  return m;
}

}  // namespace symcex::models
