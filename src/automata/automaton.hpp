// SymCeX -- shared structure of explicit omega-automata.
//
// Every automaton type of Section 8 (Streett, Rabin, Muller, Buchi) is a
// finite transition structure over a finite alphabet plus an acceptance
// condition on the inf-set of a run.  TransitionStructure carries the
// common part; the concrete classes add their acceptance and an exact
// accepts_lasso decider (used to validate containment counterexamples).

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace symcex::automata {

using AState = std::uint32_t;
using Symbol = std::uint32_t;

/// States, alphabet and labelled transitions of an omega-automaton.
struct TransitionStructure {
  std::uint32_t num_states = 0;
  std::uint32_t num_symbols = 0;
  AState initial = 0;
  /// transitions[s] = list of (symbol, successor).
  std::vector<std::vector<std::pair<Symbol, AState>>> transitions;

  TransitionStructure(std::uint32_t states, std::uint32_t symbols,
                      AState initial_state);

  void add_transition(AState from, Symbol symbol, AState to);

  /// At most one successor per (state, symbol)?
  [[nodiscard]] bool is_deterministic() const;
  /// At least one successor per (state, symbol)?
  [[nodiscard]] bool is_complete() const;

  /// Add a sink state receiving all missing (state, symbol) edges and
  /// return its id (num_states grows by one); no-op returning the current
  /// state count if already complete.  The caller is responsible for
  /// making the sink rejecting in its acceptance condition.
  AState add_completion_sink();
};

namespace detail {

/// The product of an automaton with an ultimately periodic word
/// prefix (cycle)^w: node = q * len + position.  Infinite runs of the
/// automaton on the word are exactly the infinite paths from
/// (initial, 0); acceptance reduces to an emptiness check on the
/// reachable part.
struct LassoProduct {
  std::size_t num_nodes = 0;
  std::vector<std::vector<std::uint32_t>> succ;
  std::vector<AState> proj;        // node -> automaton state
  std::vector<bool> reachable;     // from (initial, 0)

  LassoProduct(const TransitionStructure& automaton,
               const std::vector<Symbol>& prefix,
               const std::vector<Symbol>& cycle);
};

/// Tarjan SCCs over the node subset `in`; returns (component id per node,
/// -1 outside; number of components).
std::pair<std::vector<int>, int> lasso_sccs(const LassoProduct& graph,
                                            const std::vector<bool>& in);

/// Nontrivial SCCs (size > 1 or a self-loop) as node lists.
std::vector<std::vector<std::uint32_t>> nontrivial_sccs(
    const LassoProduct& graph, const std::vector<bool>& in);

}  // namespace detail

}  // namespace symcex::automata
