// SymCeX -- bridging transition systems and omega-automata (Section 8).
//
// The paper's language-containment methodology models "the system to be
// verified" as an omega-automaton K_sys.  This bridge produces that
// automaton from a (finite, enumerable) labeled transition system: the
// automaton's states are the reachable states, a transition s -> t is
// labelled with the valuation of the chosen atomic propositions at the
// TARGET state t (so the emitted word is the label trace of the run,
// offset by the initial state), and the system's fairness constraints
// become Streett pairs (empty, H_k) -- "each constraint holds infinitely
// often".  Checking L(sys) against a deterministic specification
// automaton over the same label alphabet then verifies the model the
// Section 8 way, with counterexample words mapping back to label traces.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "automata/streett.hpp"
#include "ts/transition_system.hpp"

namespace symcex::automata {

struct TsToAutomaton {
  StreettAutomaton automaton;
  /// Names of the labels, in bit order: symbol bit i (1 << i) is set when
  /// labels[i] holds at the emitting state.
  std::vector<std::string> labels;
  /// Render a symbol as e.g. "{req, !ack}".
  [[nodiscard]] std::string symbol_name(Symbol symbol) const;
};

/// Enumerate `ts` (up to max_states; throws std::length_error beyond) and
/// build its Streett automaton over the 2^|labels| alphabet of the named
/// labels.  Every named label must exist on the system; at most 16 labels.
/// The result has a fresh initial state emitting the initial valuations
/// nondeterministically (standard initial-state unrolling).
[[nodiscard]] TsToAutomaton to_streett(const ts::TransitionSystem& ts,
                                       const std::vector<std::string>& labels,
                                       std::size_t max_states = 1u << 16);

}  // namespace symcex::automata
