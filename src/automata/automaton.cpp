#include "automata/automaton.hpp"

#include <algorithm>
#include <stdexcept>

namespace symcex::automata {

TransitionStructure::TransitionStructure(std::uint32_t states,
                                         std::uint32_t symbols,
                                         AState initial_state)
    : num_states(states),
      num_symbols(symbols),
      initial(initial_state),
      transitions(states) {
  if (states == 0 || symbols == 0) {
    throw std::invalid_argument(
        "TransitionStructure: empty state set or alphabet");
  }
  if (initial_state >= states) {
    throw std::invalid_argument("TransitionStructure: bad initial state");
  }
}

void TransitionStructure::add_transition(AState from, Symbol symbol,
                                         AState to) {
  if (from >= num_states || to >= num_states || symbol >= num_symbols) {
    throw std::invalid_argument(
        "TransitionStructure::add_transition: bad ids");
  }
  transitions[from].emplace_back(symbol, to);
}

bool TransitionStructure::is_deterministic() const {
  for (const auto& outs : transitions) {
    std::vector<bool> seen(num_symbols, false);
    for (const auto& [a, t] : outs) {
      (void)t;
      if (seen[a]) return false;
      seen[a] = true;
    }
  }
  return true;
}

bool TransitionStructure::is_complete() const {
  for (const auto& outs : transitions) {
    std::vector<bool> seen(num_symbols, false);
    for (const auto& [a, t] : outs) {
      (void)t;
      seen[a] = true;
    }
    if (!std::all_of(seen.begin(), seen.end(), [](bool b) { return b; })) {
      return false;
    }
  }
  return true;
}

AState TransitionStructure::add_completion_sink() {
  if (is_complete()) return num_states;
  const AState sink = num_states;
  ++num_states;
  transitions.emplace_back();
  for (AState s = 0; s < num_states; ++s) {
    std::vector<bool> seen(num_symbols, false);
    for (const auto& [a, t] : transitions[s]) {
      (void)t;
      seen[a] = true;
    }
    for (Symbol a = 0; a < num_symbols; ++a) {
      if (!seen[a]) transitions[s].emplace_back(a, sink);
    }
  }
  return sink;
}

namespace detail {

LassoProduct::LassoProduct(const TransitionStructure& automaton,
                           const std::vector<Symbol>& prefix,
                           const std::vector<Symbol>& cycle) {
  if (cycle.empty()) {
    throw std::invalid_argument("LassoProduct: empty cycle");
  }
  const std::size_t len = prefix.size() + cycle.size();
  auto symbol_at = [&](std::size_t i) {
    return i < prefix.size() ? prefix[i] : cycle[i - prefix.size()];
  };
  auto next_pos = [&](std::size_t i) {
    return i + 1 < len ? i + 1 : prefix.size();
  };
  num_nodes = static_cast<std::size_t>(automaton.num_states) * len;
  succ.resize(num_nodes);
  proj.resize(num_nodes);
  for (AState q = 0; q < automaton.num_states; ++q) {
    for (std::size_t i = 0; i < len; ++i) {
      const auto node = static_cast<std::uint32_t>(q * len + i);
      proj[node] = q;
      for (const auto& [a, t] : automaton.transitions[q]) {
        if (a == symbol_at(i)) {
          succ[node].push_back(
              static_cast<std::uint32_t>(t * len + next_pos(i)));
        }
      }
    }
  }
  reachable.assign(num_nodes, false);
  std::vector<std::uint32_t> work{
      static_cast<std::uint32_t>(automaton.initial * len + 0)};
  reachable[work[0]] = true;
  while (!work.empty()) {
    const std::uint32_t v = work.back();
    work.pop_back();
    for (const std::uint32_t w : succ[v]) {
      if (!reachable[w]) {
        reachable[w] = true;
        work.push_back(w);
      }
    }
  }
}

std::pair<std::vector<int>, int> lasso_sccs(const LassoProduct& g,
                                            const std::vector<bool>& in) {
  const std::size_t n = g.num_nodes;
  std::vector<int> comp(n, -1);
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  struct Frame {
    std::uint32_t v;
    std::size_t child;
  };
  std::vector<Frame> call;
  int next_index = 0;
  int ncomp = 0;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (!in[root] || index[root] != -1) continue;
    call.push_back({root, 0});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call.empty()) {
      Frame& fr = call.back();
      const std::uint32_t v = fr.v;
      if (fr.child < g.succ[v].size()) {
        const std::uint32_t w = g.succ[v][fr.child++];
        if (!in[w]) continue;
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
        continue;
      }
      if (low[v] == index[v]) {
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = ncomp;
          if (w == v) break;
        }
        ++ncomp;
      }
      call.pop_back();
      if (!call.empty()) {
        low[call.back().v] = std::min(low[call.back().v], low[v]);
      }
    }
  }
  return {std::move(comp), ncomp};
}

std::vector<std::vector<std::uint32_t>> nontrivial_sccs(
    const LassoProduct& g, const std::vector<bool>& in) {
  const auto [comp, ncomp] = lasso_sccs(g, in);
  std::vector<std::vector<std::uint32_t>> members(ncomp);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    if (comp[v] >= 0) members[comp[v]].push_back(v);
  }
  std::vector<std::vector<std::uint32_t>> out;
  for (auto& m : members) {
    bool nontrivial = m.size() > 1;
    if (!nontrivial) {
      for (const std::uint32_t w : g.succ[m[0]]) {
        if (w == m[0]) nontrivial = true;
      }
    }
    if (nontrivial) out.push_back(std::move(m));
  }
  return out;
}

}  // namespace detail

}  // namespace symcex::automata
