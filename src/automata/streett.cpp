#include "automata/streett.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace symcex::automata {

void StreettAutomaton::add_pair(std::vector<AState> u, std::vector<AState> v) {
  for (const AState s : u) {
    if (s >= num_states) {
      throw std::invalid_argument("StreettAutomaton::add_pair: bad state");
    }
  }
  for (const AState s : v) {
    if (s >= num_states) {
      throw std::invalid_argument("StreettAutomaton::add_pair: bad state");
    }
  }
  acceptance.push_back(StreettPair{std::move(u), std::move(v)});
}

void StreettAutomaton::complete() {
  if (is_complete()) return;
  // Runs stuck in the sink are rejected: the pair (all-old-states, {})
  // forces inf(run) to avoid the sink.
  std::vector<AState> old_states(num_states);
  for (AState s = 0; s < num_states; ++s) old_states[s] = s;
  (void)add_completion_sink();
  acceptance.push_back(StreettPair{std::move(old_states), {}});
}

StreettAutomaton StreettAutomaton::buchi(std::uint32_t states,
                                         std::uint32_t symbols,
                                         AState initial_state,
                                         const std::vector<AState>& accepting) {
  StreettAutomaton a(states, symbols, initial_state);
  a.add_pair({}, accepting);  // inf subset of {} fails, so inf must hit F
  return a;
}

namespace {

/// Does the subset contain a closed walk whose inf-set satisfies every
/// Streett pair?  Recursive SCC refinement.
bool streett_nonempty(const detail::LassoProduct& g,
                      const std::vector<StreettPair>& pairs,
                      const std::vector<bool>& subset) {
  for (const auto& scc : detail::nontrivial_sccs(g, subset)) {
    // Which automaton states appear in this SCC (the candidate inf-set).
    std::size_t bound = 0;
    for (const std::uint32_t v : scc) {
      bound = std::max<std::size_t>(bound, g.proj[v] + 1);
    }
    std::vector<bool> proj_in(bound, false);
    for (const std::uint32_t v : scc) proj_in[g.proj[v]] = true;
    auto hits = [&](const std::vector<AState>& set) {
      return std::any_of(set.begin(), set.end(), [&](AState s) {
        return s < proj_in.size() && proj_in[s];
      });
    };
    auto inside = [&](const std::vector<AState>& set) {
      std::vector<bool> allowed(proj_in.size(), false);
      for (const AState s : set) {
        if (s < allowed.size()) allowed[s] = true;
      }
      for (std::size_t s = 0; s < proj_in.size(); ++s) {
        if (proj_in[s] && !allowed[s]) return false;
      }
      return true;
    };
    std::vector<const StreettPair*> bad;
    for (const auto& pr : pairs) {
      if (!hits(pr.v) && !inside(pr.u)) bad.push_back(&pr);
    }
    if (bad.empty()) return true;  // the whole SCC is an accepting inf-set
    // Any accepting walk in this SCC must stay inside U of every bad pair.
    std::vector<bool> restricted(g.num_nodes, false);
    std::size_t kept = 0;
    for (const std::uint32_t v : scc) {
      bool ok = true;
      for (const StreettPair* pr : bad) {
        if (std::find(pr->u.begin(), pr->u.end(), g.proj[v]) ==
            pr->u.end()) {
          ok = false;
          break;
        }
      }
      if (ok) {
        restricted[v] = true;
        ++kept;
      }
    }
    if (kept > 0 && kept < scc.size() &&
        streett_nonempty(g, pairs, restricted)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool StreettAutomaton::accepts_lasso(const std::vector<Symbol>& prefix,
                                     const std::vector<Symbol>& cycle) const {
  if (cycle.empty()) {
    throw std::invalid_argument("accepts_lasso: empty cycle");
  }
  const detail::LassoProduct g(*this, prefix, cycle);
  return streett_nonempty(g, acceptance, g.reachable);
}

}  // namespace symcex::automata
