#include "automata/from_ts.hpp"

#include <stdexcept>

#include "explicit/explicit_graph.hpp"

namespace symcex::automata {

std::string TsToAutomaton::symbol_name(Symbol symbol) const {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ", ";
    if ((symbol >> i & 1u) == 0) out += '!';
    out += labels[i];
  }
  out += '}';
  return out;
}

TsToAutomaton to_streett(const ts::TransitionSystem& ts,
                         const std::vector<std::string>& labels,
                         std::size_t max_states) {
  if (labels.empty() || labels.size() > 16) {
    throw std::invalid_argument("to_streett: need 1..16 labels");
  }
  const enumerative::Enumerated e = enumerative::enumerate(ts, max_states);
  const std::uint32_t n = static_cast<std::uint32_t>(e.graph.num_states());

  // Valuation of the chosen labels at each enumerated state.
  std::vector<Symbol> valuation(n, 0);
  for (std::size_t bit = 0; bit < labels.size(); ++bit) {
    const auto it = e.graph.labels.find(labels[bit]);
    if (it == e.graph.labels.end()) {
      throw std::invalid_argument("to_streett: unknown label '" +
                                  labels[bit] + "'");
    }
    for (std::uint32_t s = 0; s < n; ++s) {
      if (it->second[s]) valuation[s] |= Symbol{1} << bit;
    }
  }

  TsToAutomaton out{
      StreettAutomaton(n + 1, Symbol{1} << labels.size(), n), labels};
  for (std::uint32_t s = 0; s < n; ++s) {
    for (const enumerative::StateId t : e.graph.succ[s]) {
      out.automaton.add_transition(s, valuation[t], t);
    }
  }
  for (const enumerative::StateId s0 : e.graph.init) {
    out.automaton.add_transition(n, valuation[s0], s0);
  }
  // Fairness constraints become Streett pairs (empty, H_k): each must
  // recur on accepted runs.
  for (const auto& fair_set : e.graph.fairness) {
    std::vector<AState> members;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (fair_set[s]) members.push_back(s);
    }
    out.automaton.add_pair({}, std::move(members));
  }
  return out;
}

}  // namespace symcex::automata
