#include "automata/omega.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace symcex::automata {

void RabinAutomaton::add_pair(std::vector<AState> e, std::vector<AState> f) {
  for (const AState s : e) {
    if (s >= num_states) {
      throw std::invalid_argument("RabinAutomaton::add_pair: bad state");
    }
  }
  for (const AState s : f) {
    if (s >= num_states) {
      throw std::invalid_argument("RabinAutomaton::add_pair: bad state");
    }
  }
  acceptance.push_back(RabinPair{std::move(e), std::move(f)});
}

void RabinAutomaton::complete() {
  if (is_complete()) return;
  // A run stuck in the sink satisfies no pair if the sink joins every E_i.
  const AState sink = add_completion_sink();
  for (auto& pr : acceptance) pr.e.push_back(sink);
}

bool RabinAutomaton::accepts_lasso(const std::vector<Symbol>& prefix,
                                   const std::vector<Symbol>& cycle) const {
  if (cycle.empty()) {
    throw std::invalid_argument("accepts_lasso: empty cycle");
  }
  const detail::LassoProduct g(*this, prefix, cycle);
  // Accepted iff for some pair there is a reachable nontrivial SCC of the
  // (proj not in E)-restricted graph whose projection intersects F.
  for (const auto& pr : acceptance) {
    std::vector<bool> avoid_e = g.reachable;
    for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
      if (!avoid_e[v]) continue;
      if (std::find(pr.e.begin(), pr.e.end(), g.proj[v]) != pr.e.end()) {
        avoid_e[v] = false;
      }
    }
    for (const auto& scc : detail::nontrivial_sccs(g, avoid_e)) {
      for (const std::uint32_t v : scc) {
        if (std::find(pr.f.begin(), pr.f.end(), g.proj[v]) != pr.f.end()) {
          return true;
        }
      }
    }
  }
  return false;
}

void MullerAutomaton::add_set(std::vector<AState> inf_set) {
  for (const AState s : inf_set) {
    if (s >= num_states) {
      throw std::invalid_argument("MullerAutomaton::add_set: bad state");
    }
  }
  std::sort(inf_set.begin(), inf_set.end());
  inf_set.erase(std::unique(inf_set.begin(), inf_set.end()), inf_set.end());
  if (inf_set.empty()) {
    throw std::invalid_argument("MullerAutomaton::add_set: empty inf-set");
  }
  acceptance.push_back(std::move(inf_set));
}

bool MullerAutomaton::accepts_lasso(const std::vector<Symbol>& prefix,
                                    const std::vector<Symbol>& cycle) const {
  if (cycle.empty()) {
    throw std::invalid_argument("accepts_lasso: empty cycle");
  }
  const detail::LassoProduct g(*this, prefix, cycle);
  // Accepted iff for some table entry M there is a reachable nontrivial
  // SCC of the M-restricted graph whose projection is exactly M: a run
  // cycling through the whole SCC then has inf(run) == M.
  for (const auto& m : acceptance) {
    std::vector<bool> in_m = g.reachable;
    for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
      if (!in_m[v]) continue;
      if (!std::binary_search(m.begin(), m.end(), g.proj[v])) {
        in_m[v] = false;
      }
    }
    for (const auto& scc : detail::nontrivial_sccs(g, in_m)) {
      std::vector<bool> covered(num_states, false);
      for (const std::uint32_t v : scc) covered[g.proj[v]] = true;
      const bool all = std::all_of(m.begin(), m.end(),
                                   [&](AState s) { return covered[s]; });
      if (all) return true;
    }
  }
  return false;
}

}  // namespace symcex::automata
