// SymCeX -- Streett automata and language containment (Section 8).
//
// Verification by language inclusion: the system is an omega-automaton
// K_sys, the specification a second automaton K_spec, and the system is
// correct iff L(K_sys) is a subset of L(K_spec).  Following the paper we
// focus on Streett automata (acceptance: for every pair (U_i, V_i),
// inf(run) is a subset of U_i or intersects V_i), require the
// specification to be deterministic and complete (containment against a
// nondeterministic specification is PSPACE-hard), and reduce the check to
// the restricted CTL* fragment on the product structure M(K, K'):
//
//   L(K) subset of L(K')   iff   M(K, K') |= not E( phi_F  &  not phi_F' )
//
// where phi_F encodes K's acceptance (a conjunction of FG U | GF V) and
// not phi_F' the negation of K''s (a disjunction of GF !U' & FG !V').
// Each disjunct lands exactly in Section 7's fragment, so a containment
// counterexample is a Section 7 witness: an ultimately periodic word
// accepted by the system and rejected by the specification.
//
// Buchi automata are the special case with pairs {(empty, F)}; Rabin and
// Muller automata are handled "in essentially the same way" (the paper's
// closing remark of Section 8) in omega.hpp.

#pragma once

#include <optional>
#include <vector>

#include "automata/automaton.hpp"
#include "core/trace.hpp"
#include "core/witness.hpp"

namespace symcex::automata {

/// One Streett acceptance pair: inf(run) subset of `u` OR intersects `v`.
struct StreettPair {
  std::vector<AState> u;
  std::vector<AState> v;
};

/// A (possibly nondeterministic) Streett automaton.
struct StreettAutomaton : TransitionStructure {
  std::vector<StreettPair> acceptance;

  StreettAutomaton(std::uint32_t states, std::uint32_t symbols,
                   AState initial_state)
      : TransitionStructure(states, symbols, initial_state) {}

  void add_pair(std::vector<AState> u, std::vector<AState> v);

  /// Make the automaton complete by routing missing (state, symbol) pairs
  /// to a fresh rejecting sink.
  void complete();

  /// Buchi automaton (visit `accepting` infinitely often) as the Streett
  /// automaton with the single pair (empty, F).
  [[nodiscard]] static StreettAutomaton buchi(
      std::uint32_t states, std::uint32_t symbols, AState initial_state,
      const std::vector<AState>& accepting);

  /// Exact acceptance of the ultimately periodic word prefix (cycle)^w
  /// (Streett emptiness on the automaton x lasso product); used to
  /// validate counterexamples independently of the symbolic path.
  [[nodiscard]] bool accepts_lasso(const std::vector<Symbol>& prefix,
                                   const std::vector<Symbol>& cycle) const;
};

/// An ultimately periodic counterexample word with the product run
/// behind it.
struct WordLasso {
  std::vector<Symbol> word_prefix;
  std::vector<Symbol> word_cycle;
  std::vector<std::pair<AState, AState>> run_prefix;  ///< (sys, spec) states
  std::vector<std::pair<AState, AState>> run_cycle;
};

struct ContainmentResult {
  bool contained = false;
  std::optional<WordLasso> counterexample;
  /// Reachable product states explored symbolically (diagnostics).
  double product_states = 0.0;
  /// Fixpoint evaluations spent (Section 9's cost remark).
  std::size_t fixpoint_evaluations = 0;
  /// Three-valued verdict: kTrue = contained, kFalse = counterexample
  /// found, kUnknown = the resource budget (guard::ScopedBudget /
  /// SYMCEX_* env limits, picked up by the private product manager) ran
  /// out first.  When kUnknown, `contained` is false, `counterexample`
  /// empty, and `unknown_reason` / `spent` say what gave out; rerun with
  /// a raised budget for the real verdict.
  core::Verdict verdict = core::Verdict::kUnknown;
  std::string unknown_reason;
  guard::BudgetSpent spent;
};

/// Check L(sys) subset of L(spec).  `spec` must be deterministic and
/// complete (throws otherwise); `sys` may be nondeterministic.  On failure
/// the result carries a word accepted by sys and rejected by spec.
[[nodiscard]] ContainmentResult check_containment(const StreettAutomaton& sys,
                                                  const StreettAutomaton& spec,
                                                  const core::WitnessOptions&
                                                      options = {});

}  // namespace symcex::automata
