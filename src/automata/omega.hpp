// SymCeX -- Rabin and Muller automata containment (Section 8's closing
// remark: "Counterexamples for the language inclusion problems of Buchi,
// Muller, Rabin, and L automata can be found in essentially the same
// way").
//
// Each acceptance condition compiles to a positive boolean combination of
// GF / FG path atoms over product-state predicates:
//
//   Rabin  {(E_i, F_i)}:  phi = OR_i ( FG !E_i & GF F_i )
//          (inf avoids E_i and touches F_i, for some pair)
//   neg:                 !phi = AND_i ( GF E_i | FG !F_i )
//
//   Muller {M_1..M_k}:    phi = OR_j ( FG in(M_j) & AND_{s in M_j} GF s )
//          (inf is exactly M_j: eventually only M_j states, each recurs)
//   neg:                 !phi = AND_j ( GF !in(M_j) | OR_{s in M_j} FG !s )
//
// both of which land in Section 7's restricted fragment after DNF
// expansion, so the same product construction + fragment witness pipeline
// yields the counterexample word.

#pragma once

#include "automata/automaton.hpp"
#include "automata/streett.hpp"

namespace symcex::automata {

/// One Rabin pair: inf(run) avoids `e` AND intersects `f`.
struct RabinPair {
  std::vector<AState> e;
  std::vector<AState> f;
};

/// A Rabin automaton: a run is accepted if SOME pair is satisfied.
struct RabinAutomaton : TransitionStructure {
  std::vector<RabinPair> acceptance;

  RabinAutomaton(std::uint32_t states, std::uint32_t symbols,
                 AState initial_state)
      : TransitionStructure(states, symbols, initial_state) {}

  void add_pair(std::vector<AState> e, std::vector<AState> f);

  /// Make complete with a rejecting sink (added to every pair's E set).
  void complete();

  [[nodiscard]] bool accepts_lasso(const std::vector<Symbol>& prefix,
                                   const std::vector<Symbol>& cycle) const;
};

/// A Muller automaton: a run is accepted if inf(run) equals one of the
/// sets in the acceptance table exactly.
struct MullerAutomaton : TransitionStructure {
  std::vector<std::vector<AState>> acceptance;

  MullerAutomaton(std::uint32_t states, std::uint32_t symbols,
                  AState initial_state)
      : TransitionStructure(states, symbols, initial_state) {}

  void add_set(std::vector<AState> inf_set);

  [[nodiscard]] bool accepts_lasso(const std::vector<Symbol>& prefix,
                                   const std::vector<Symbol>& cycle) const;
};

// -- mixed-type containment (spec deterministic and complete in all cases) --

[[nodiscard]] ContainmentResult check_containment(
    const StreettAutomaton& sys, const RabinAutomaton& spec,
    const core::WitnessOptions& options = {});
[[nodiscard]] ContainmentResult check_containment(
    const RabinAutomaton& sys, const StreettAutomaton& spec,
    const core::WitnessOptions& options = {});
[[nodiscard]] ContainmentResult check_containment(
    const RabinAutomaton& sys, const RabinAutomaton& spec,
    const core::WitnessOptions& options = {});
[[nodiscard]] ContainmentResult check_containment(
    const StreettAutomaton& sys, const MullerAutomaton& spec,
    const core::WitnessOptions& options = {});
[[nodiscard]] ContainmentResult check_containment(
    const MullerAutomaton& sys, const StreettAutomaton& spec,
    const core::WitnessOptions& options = {});

}  // namespace symcex::automata
