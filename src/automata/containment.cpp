// Generic language-containment engine (Section 8).
//
// All public check_containment overloads share one pipeline:
//   1. build the product structure M(K, K') symbolically, keeping the read
//      symbol in the state so the counterexample word can be decoded;
//   2. compile the system's acceptance phi and the negated specification
//      acceptance !phi' into DNFs of restricted-fragment conjuncts
//      (GF p | FG q) over product-state predicates;
//   3. for each disjunct of phi & !phi', run the Section 7 check; the
//      first satisfiable disjunct yields the witness lasso, decoded into
//      an ultimately periodic word.

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

#include "automata/omega.hpp"
#include "automata/streett.hpp"
#include "certify/certify.hpp"
#include "core/checker.hpp"
#include "ctlstar/star_checker.hpp"
#include "diag/metrics.hpp"
#include "ts/field.hpp"
#include "ts/transition_system.hpp"

namespace symcex::automata {

namespace {

using Dnf = std::vector<std::vector<ctlstar::Conjunct>>;

/// Conjunction of two DNFs (cross product of disjuncts).  An empty DNF is
/// "false"; a DNF with one empty disjunct is "true".
Dnf cross(const Dnf& a, const Dnf& b) {
  Dnf out;
  for (const auto& da : a) {
    for (const auto& db : b) {
      std::vector<ctlstar::Conjunct> merged = da;
      merged.insert(merged.end(), db.begin(), db.end());
      out.push_back(std::move(merged));
    }
  }
  return out;
}

/// The symbolic product of two transition structures plus the predicate
/// encoders both acceptance compilers need.
class ProductCtx {
 public:
  ProductCtx(const TransitionStructure& sys, const TransitionStructure& spec)
      : fsys_(m_, "sys", std::max(2u, sys.num_states)),
        fspec_(m_, "spec", std::max(2u, spec.num_states)),
        fsym_(m_, "sym", std::max(2u, sys.num_symbols)) {
    bdd::Bdd t_sys = m_.manager().zero();
    for (AState s = 0; s < sys.num_states; ++s) {
      for (const auto& [a, t] : sys.transitions[s]) {
        t_sys |= fsys_.eq(s) & fsym_.eq(a) & fsys_.eq(t, true);
      }
    }
    bdd::Bdd t_spec = m_.manager().zero();
    for (AState s = 0; s < spec.num_states; ++s) {
      for (const auto& [a, t] : spec.transitions[s]) {
        t_spec |= fspec_.eq(s) & fsym_.eq(a) & fspec_.eq(t, true);
      }
    }
    m_.add_trans(t_sys);
    m_.add_trans(t_spec);
    // Restrict the symbol rail to the system's real alphabet.
    sym_valid_ = m_.manager().zero();
    bdd::Bdd sym_valid_next = m_.manager().zero();
    for (Symbol a = 0; a < sys.num_symbols; ++a) {
      sym_valid_ |= fsym_.eq(a);
      sym_valid_next |= fsym_.eq(a, true);
    }
    m_.add_trans(sym_valid_next);
    m_.set_init(fsys_.eq(sys.initial) & fspec_.eq(spec.initial) & sym_valid_);
    m_.finalize();
    sys_valid_ = m_.manager().zero();
    for (AState s = 0; s < sys.num_states; ++s) sys_valid_ |= fsys_.eq(s);
    spec_valid_ = m_.manager().zero();
    for (AState s = 0; s < spec.num_states; ++s) spec_valid_ |= fspec_.eq(s);
  }

  [[nodiscard]] bdd::Bdd sys_among(const std::vector<AState>& states) {
    bdd::Bdd out = m_.manager().zero();
    for (const AState s : states) out |= fsys_.eq(s);
    return out;
  }
  [[nodiscard]] bdd::Bdd sys_not_among(const std::vector<AState>& states) {
    return sys_valid_ & !sys_among(states);
  }
  [[nodiscard]] bdd::Bdd spec_among(const std::vector<AState>& states) {
    bdd::Bdd out = m_.manager().zero();
    for (const AState s : states) out |= fspec_.eq(s);
    return out;
  }
  [[nodiscard]] bdd::Bdd spec_not_among(const std::vector<AState>& states) {
    return spec_valid_ & !spec_among(states);
  }
  [[nodiscard]] bdd::Bdd zero() { return m_.manager().zero(); }

  /// Run the fragment check over the combined DNF and decode a witness.
  ContainmentResult check(const Dnf& total,
                          const core::WitnessOptions& options) {
    const diag::PhaseScope phase("containment");
    const bool diag_on = diag::enabled();
    // The product structure gets its own Checker and hence its own
    // core::EvalContext: under SYMCEX_CARE_SET=1 the care set is the
    // product's reachable states (computed for product_states below
    // anyway), so the fragment fixpoints run care-simplified sweeps while
    // certify_result still replays the lasso on the exact automata.
    core::Checker checker(m_);
    ctlstar::StarChecker star(checker, options);
    ContainmentResult out;
    out.product_states = m_.count_states(m_.reachable());
    for (const auto& conjuncts : total) {
      if (diag_on) {
        diag::Registry::global().add("containment.disjuncts_checked");
      }
      const bdd::Bdd sat = star.check_conjunction(conjuncts);
      if (!m_.init().intersects(sat)) continue;
      const core::Trace trace =
          star.conjunction_witness(conjuncts, m_.init());
      WordLasso lasso;
      auto decode = [&](const bdd::Bdd& state) {
        const std::vector<bool> values = m_.state_values(state);
        return std::make_tuple(fsys_.decode(values), fspec_.decode(values),
                               fsym_.decode(values));
      };
      for (const auto& st : trace.prefix) {
        const auto [qs, qp, a] = decode(st);
        lasso.run_prefix.emplace_back(qs, qp);
        lasso.word_prefix.push_back(a);
      }
      for (const auto& st : trace.cycle) {
        const auto [qs, qp, a] = decode(st);
        lasso.run_cycle.emplace_back(qs, qp);
        lasso.word_cycle.push_back(a);
      }
      out.contained = false;
      out.verdict = core::Verdict::kFalse;
      out.counterexample = std::move(lasso);
      out.fixpoint_evaluations = star.fixpoint_evaluations();
      return out;
    }
    out.contained = true;
    out.verdict = core::Verdict::kTrue;
    out.fixpoint_evaluations = star.fixpoint_evaluations();
    return out;
  }

 private:
  ts::TransitionSystem m_;
  ts::Field fsys_;
  ts::Field fspec_;
  ts::Field fsym_;
  bdd::Bdd sys_valid_;
  bdd::Bdd spec_valid_;
  bdd::Bdd sym_valid_;
};

// ---- acceptance compilers (system side: phi; spec side: !phi) -------------

Dnf streett_phi(ProductCtx& ctx, const std::vector<StreettPair>& pairs) {
  std::vector<ctlstar::Conjunct> conjuncts;
  for (const auto& pr : pairs) {
    // FG U | GF V
    conjuncts.push_back(
        ctlstar::Conjunct{ctx.sys_among(pr.v), ctx.sys_among(pr.u)});
  }
  return Dnf{std::move(conjuncts)};
}

Dnf streett_neg_phi(ProductCtx& ctx, const std::vector<StreettPair>& pairs) {
  Dnf out;
  for (const auto& pr : pairs) {
    // GF !U & FG !V
    out.push_back(
        {ctlstar::Conjunct{ctx.spec_not_among(pr.u), ctx.zero()},
         ctlstar::Conjunct{ctx.zero(), ctx.spec_not_among(pr.v)}});
  }
  return out;
}

Dnf rabin_phi(ProductCtx& ctx, const std::vector<RabinPair>& pairs) {
  Dnf out;
  for (const auto& pr : pairs) {
    // FG !E & GF F
    out.push_back({ctlstar::Conjunct{ctx.zero(), ctx.sys_not_among(pr.e)},
                   ctlstar::Conjunct{ctx.sys_among(pr.f), ctx.zero()}});
  }
  return out;
}

Dnf rabin_neg_phi(ProductCtx& ctx, const std::vector<RabinPair>& pairs) {
  std::vector<ctlstar::Conjunct> conjuncts;
  for (const auto& pr : pairs) {
    // GF E | FG !F
    conjuncts.push_back(ctlstar::Conjunct{ctx.spec_among(pr.e),
                                          ctx.spec_not_among(pr.f)});
  }
  return Dnf{std::move(conjuncts)};
}

Dnf muller_phi(ProductCtx& ctx,
               const std::vector<std::vector<AState>>& table) {
  Dnf out;
  for (const auto& m : table) {
    // FG in(M) & AND_{s in M} GF s
    std::vector<ctlstar::Conjunct> conjuncts;
    conjuncts.push_back(ctlstar::Conjunct{ctx.zero(), ctx.sys_among(m)});
    for (const AState s : m) {
      conjuncts.push_back(ctlstar::Conjunct{ctx.sys_among({s}), ctx.zero()});
    }
    out.push_back(std::move(conjuncts));
  }
  return out;
}

Dnf muller_neg_phi(ProductCtx& ctx,
                   const std::vector<std::vector<AState>>& table) {
  // AND_M ( GF !in(M)  |  OR_{s in M} FG !s ): expand to DNF.
  Dnf out{{}};  // true
  for (const auto& m : table) {
    Dnf factor;
    factor.push_back(
        {ctlstar::Conjunct{ctx.spec_not_among(m), ctx.zero()}});
    for (const AState s : m) {
      factor.push_back(
          {ctlstar::Conjunct{ctx.zero(), ctx.spec_not_among({s})}});
    }
    out = cross(out, factor);
  }
  return out;
}

/// When certification is on, re-check a non-containment verdict with the
/// automata's own exact lasso acceptance (independent of the symbolic
/// product): the word must be accepted by the system and rejected by the
/// specification.
template <typename Sys, typename Spec>
void certify_result(const ContainmentResult& result, const Sys& sys,
                    const Spec& spec) {
  if (!certify::enabled() || result.contained) return;
  const WordLasso& w = *result.counterexample;
  certify::Certificate cert;
  cert.require("sys-accepts",
               sys.accepts_lasso(w.word_prefix, w.word_cycle),
               "the counterexample word must be accepted by the system "
               "automaton");
  cert.require("spec-rejects",
               !spec.accepts_lasso(w.word_prefix, w.word_cycle),
               "the counterexample word must be rejected by the "
               "specification automaton");
  certify::require_certified(cert, "check_containment");
}

/// Run one containment pipeline under the ambient resource budget: a
/// guard::ResourceExhausted abort anywhere (product construction included
/// -- the private product manager installs guard::ScopedBudget::current()
/// on creation) is reported as verdict == kUnknown rather than escaping.
/// Rerun inside a larger ScopedBudget for a definite answer.
template <typename Body>
ContainmentResult guarded_containment(Body&& body) {
  try {
    return body();
  } catch (const guard::ResourceExhausted& e) {
    ContainmentResult out;
    out.contained = false;
    out.verdict = core::Verdict::kUnknown;
    out.unknown_reason = e.what();
    out.spent = e.spent();
    if (diag::enabled()) {
      diag::Registry::global().add_in(
          "guard", std::string("containment.unknown.") +
                       guard::resource_name(e.resource()),
          1);
    }
    return out;
  }
}

void require_spec(const TransitionStructure& spec, const char* what) {
  if (!spec.is_deterministic()) {
    throw std::invalid_argument(
        std::string("check_containment: the ") + what +
        " specification automaton must be deterministic (containment "
        "against a nondeterministic specification is PSPACE-hard)");
  }
  if (!spec.is_complete()) {
    throw std::invalid_argument(std::string("check_containment: the ") +
                                what +
                                " specification automaton must be complete "
                                "(call complete())");
  }
}

}  // namespace

ContainmentResult check_containment(const StreettAutomaton& sys,
                                    const StreettAutomaton& spec,
                                    const core::WitnessOptions& options) {
  require_spec(spec, "Streett");
  return guarded_containment([&] {
    ProductCtx ctx(sys, spec);
    ContainmentResult out = ctx.check(
        cross(streett_phi(ctx, sys.acceptance),
              streett_neg_phi(ctx, spec.acceptance)),
        options);
    certify_result(out, sys, spec);
    return out;
  });
}

ContainmentResult check_containment(const StreettAutomaton& sys,
                                    const RabinAutomaton& spec,
                                    const core::WitnessOptions& options) {
  require_spec(spec, "Rabin");
  return guarded_containment([&] {
    ProductCtx ctx(sys, spec);
    ContainmentResult out =
        ctx.check(cross(streett_phi(ctx, sys.acceptance),
                        rabin_neg_phi(ctx, spec.acceptance)),
                  options);
    certify_result(out, sys, spec);
    return out;
  });
}

ContainmentResult check_containment(const RabinAutomaton& sys,
                                    const StreettAutomaton& spec,
                                    const core::WitnessOptions& options) {
  require_spec(spec, "Streett");
  return guarded_containment([&] {
    ProductCtx ctx(sys, spec);
    ContainmentResult out =
        ctx.check(cross(rabin_phi(ctx, sys.acceptance),
                        streett_neg_phi(ctx, spec.acceptance)),
                  options);
    certify_result(out, sys, spec);
    return out;
  });
}

ContainmentResult check_containment(const RabinAutomaton& sys,
                                    const RabinAutomaton& spec,
                                    const core::WitnessOptions& options) {
  require_spec(spec, "Rabin");
  return guarded_containment([&] {
    ProductCtx ctx(sys, spec);
    ContainmentResult out =
        ctx.check(cross(rabin_phi(ctx, sys.acceptance),
                        rabin_neg_phi(ctx, spec.acceptance)),
                  options);
    certify_result(out, sys, spec);
    return out;
  });
}

ContainmentResult check_containment(const StreettAutomaton& sys,
                                    const MullerAutomaton& spec,
                                    const core::WitnessOptions& options) {
  require_spec(spec, "Muller");
  return guarded_containment([&] {
    ProductCtx ctx(sys, spec);
    ContainmentResult out =
        ctx.check(cross(streett_phi(ctx, sys.acceptance),
                        muller_neg_phi(ctx, spec.acceptance)),
                  options);
    certify_result(out, sys, spec);
    return out;
  });
}

ContainmentResult check_containment(const MullerAutomaton& sys,
                                    const StreettAutomaton& spec,
                                    const core::WitnessOptions& options) {
  require_spec(spec, "Streett");
  return guarded_containment([&] {
    ProductCtx ctx(sys, spec);
    ContainmentResult out =
        ctx.check(cross(muller_phi(ctx, sys.acceptance),
                        streett_neg_phi(ctx, spec.acceptance)),
                  options);
    certify_result(out, sys, spec);
    return out;
  });
}

}  // namespace symcex::automata
