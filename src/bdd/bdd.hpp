// SymCeX -- BDD package.
//
// A from-scratch reduced ordered binary decision diagram (ROBDD) manager in
// the style of [Bryant 86], providing the representation layer the paper's
// symbolic model checking algorithms are built on (Section 2 of the paper):
//
//   * canonical ROBDD nodes kept in a unique table (hash-consing), so
//     equivalence of two functions is a pointer comparison;
//   * an ITE-based apply with a computed cache, giving all 16 binary
//     connectives in time linear in the argument sizes;
//   * existential/universal quantification and the fused relational product
//     (AndExists) used for image/preimage computation;
//   * variable renaming between the "current state" and "next state" rails;
//   * minterm extraction (PickOneMinterm), the primitive that witness
//     generation uses to pull one concrete state out of a symbolic set;
//   * reference-counted garbage collection driven by RAII handles.
//
// Variable *index* and *level* are separate: a node stores its variable
// index (stable for the node's lifetime), while the position of that
// variable in the order is given by the var->level / level->var
// permutations the manager maintains (inverse bijections; initially the
// identity, i.e. creation order).  Dynamic reordering (src/order) permutes
// levels via the adjacent-level swap_levels() primitive; external Bdd
// handles stay valid across reorders because node indices never move.
// The transition-system layer interleaves current/next variables and
// declares each pair a group (group_vars), so sifting moves the pair as a
// block and the pairwise current<->next renaming stays order-preserving.
//
// Thread safety: by default a Manager and all Bdd handles attached to it
// are confined to one thread.  Inside an explicit *parallel region*
// (parallel_region_begin / bind_worker / parallel_region_end, driven by
// ts::ParallelExecutor) registered worker threads may run kernels and
// create/copy/destroy handles concurrently: the unique table is guarded by
// bucket-index stripe locks, node allocation hands out per-thread slot
// pools under one allocation lock, refcounts flip to std::atomic_ref
// updates, and every thread gets its own computed cache and recursion-depth
// state (ThreadCtx).  GC, audits and reordering are stop-the-world: they
// take the exclusive side of a shared/exclusive gate whose shared side
// workers hold per task, and they refuse to run mid-region.  With no region
// open, none of this machinery is exercised and the sequential code paths
// are byte-for-byte the pre-parallel ones (DESIGN.md section 14).
// Distinct managers are independent.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "guard/guard.hpp"

namespace symcex::diag {
class Registry;
}  // namespace symcex::diag

namespace symcex::persist {
struct ManagerAccess;  // snapshot plumbing (src/persist)
}  // namespace symcex::persist

namespace symcex::bdd {

class Manager;

/// RAII handle to a BDD node.  Copying a handle bumps the node's external
/// reference count; destruction releases it.  A default-constructed handle
/// is "null" (attached to no manager) and may only be assigned to or
/// compared.  Handles compare by node identity, which -- because ROBDDs are
/// canonical -- is function equality.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  [[nodiscard]] bool is_null() const { return mgr_ == nullptr; }
  [[nodiscard]] bool is_true() const;
  [[nodiscard]] bool is_false() const;
  [[nodiscard]] bool is_constant() const { return is_true() || is_false(); }

  /// The manager this handle is attached to (nullptr for a null handle).
  [[nodiscard]] Manager* manager() const { return mgr_; }

  /// Identity comparison == function equality (canonicity).
  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.idx_ == b.idx_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) { return !(a == b); }
  /// Arbitrary strict order for use in ordered containers.  Handles of
  /// distinct managers order by std::less<Manager*> (a raw `<` on
  /// unrelated pointers is unspecified behavior; std::less guarantees a
  /// total order).
  friend bool operator<(const Bdd& a, const Bdd& b) {
    if (a.mgr_ != b.mgr_) return std::less<Manager*>{}(a.mgr_, b.mgr_);
    return a.idx_ < b.idx_;
  }

  // Boolean connectives.  All operands must share a manager.
  [[nodiscard]] Bdd operator!() const;
  [[nodiscard]] Bdd operator&(const Bdd& g) const;
  [[nodiscard]] Bdd operator|(const Bdd& g) const;
  [[nodiscard]] Bdd operator^(const Bdd& g) const;
  Bdd& operator&=(const Bdd& g) { return *this = *this & g; }
  Bdd& operator|=(const Bdd& g) { return *this = *this | g; }
  Bdd& operator^=(const Bdd& g) { return *this = *this ^ g; }

  /// f - g, i.e. f AND NOT g (set difference).
  [[nodiscard]] Bdd operator-(const Bdd& g) const { return *this & !g; }
  Bdd& operator-=(const Bdd& g) { return *this = *this - g; }

  /// Logical implication test: does this function imply g everywhere?
  [[nodiscard]] bool implies(const Bdd& g) const {
    return (*this - g).is_false();
  }
  /// Set view: is this set (of satisfying assignments) a subset of g's?
  [[nodiscard]] bool is_subset_of(const Bdd& g) const { return implies(g); }
  /// Do this function and g share a satisfying assignment?
  [[nodiscard]] bool intersects(const Bdd& g) const {
    return !(*this & g).is_false();
  }

  /// Existentially quantify all variables of `cube` (a positive-literal
  /// conjunction) out of this function.
  [[nodiscard]] Bdd exists(const Bdd& cube) const;
  /// Universally quantify all variables of `cube` out of this function.
  [[nodiscard]] Bdd forall(const Bdd& cube) const;
  /// Cofactor: this function with variable `var` fixed to `value`.
  [[nodiscard]] Bdd restrict_var(std::uint32_t var, bool value) const;

  /// Coudert-Madre generalized cofactor ("constrain"): a function agreeing
  /// with this one on every assignment satisfying `care` (which must be
  /// satisfiable); off the care set the value is chosen to shrink the DAG.
  /// Satisfies  f.constrain(c) & c == f & c.
  [[nodiscard]] Bdd constrain(const Bdd& care) const;
  /// Coudert-Madre "restrict": like constrain but never enlarges the
  /// support; the standard don't-care minimizer for state sets
  /// (e.g. reduce a set modulo the reachable states).
  [[nodiscard]] Bdd minimize(const Bdd& care) const;

  /// Functional composition: substitute `g` for variable `var`.
  [[nodiscard]] Bdd compose(std::uint32_t var, const Bdd& g) const;

  /// Number of DAG nodes reachable from this root (including terminals).
  [[nodiscard]] std::size_t dag_size() const;
  /// The set of variables this function depends on, ascending.
  [[nodiscard]] std::vector<std::uint32_t> support() const;
  /// Number of satisfying assignments over `num_vars` variables.  The
  /// result is always finite: values that a double cannot represent
  /// saturate at std::numeric_limits<double>::max() instead of
  /// overflowing to infinity (relevant from ~1024 free variables up).
  /// Below the saturation point powers of two are exact.
  [[nodiscard]] double sat_count(std::uint32_t num_vars) const;
  /// Evaluate under a total assignment (indexed by variable).
  [[nodiscard]] bool eval(const std::vector<bool>& assignment) const;

  /// Render a single cube (conjunction of literals) as e.g. "x0 & !x2".
  /// Requires this BDD to be a cube; names may be empty (then "v<i>").
  [[nodiscard]] std::string cube_string(
      const std::vector<std::string>& names = {}) const;

  /// Internal node index (stable until the node is garbage collected, which
  /// cannot happen while this handle lives).  Exposed for diagnostics.
  [[nodiscard]] std::uint32_t raw_index() const { return idx_; }

 private:
  friend class Manager;
  friend struct symcex::persist::ManagerAccess;
  Bdd(Manager* mgr, std::uint32_t idx);

  Manager* mgr_ = nullptr;
  std::uint32_t idx_ = 0;
};

/// Top-level apply-style operations a Manager counts per call (not per
/// recursive step) in ManagerStats::apply_calls.
enum class ApplyOp : std::size_t {
  kNot,
  kAnd,
  kOr,
  kXor,
  kIte,
  kExists,
  kAndExists,
  kConstrain,
  kRestrictMin,
  kRestrictVar,
  kCompose,
  kRename,
  kCount,  // number of entries, not an operation
};
inline constexpr std::size_t kNumApplyOps =
    static_cast<std::size_t>(ApplyOp::kCount);

/// Short stable name of an apply operation ("and", "ite", ...).
[[nodiscard]] const char* apply_op_name(ApplyOp op);

/// Thrown by mk() when a parallel region's pre-reserved node capacity is
/// exhausted: the node array must not reallocate while worker threads hold
/// raw indices into it, so growth is impossible mid-region.  Internal to
/// the executor protocol -- ts::ParallelExecutor catches it, the region is
/// torn down, and the caller falls back to the sequential sweep (which can
/// grow the table freely).  It never escapes to users.
class ParallelCapacityExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown out of a worker's kernel when another worker has aborted the
/// region (deadline, node limit, capacity): cooperative cancellation,
/// observed at the same poll points as the wall-clock deadline.  Internal
/// to the executor protocol; never escapes ParallelExecutor::run.
struct WorkerCancelled {};

/// Escape `s` for interpolation into a double-quoted Graphviz DOT string:
/// `"` and `\` are backslash-escaped and newlines become the DOT line-break
/// escape "\n".  Mangled SMV identifiers may legally contain both, so every
/// DOT emitter (Manager::dump_dot, ts::TransitionSystem::dump_state_graph,
/// the evidence renderers) must route labels through this.
[[nodiscard]] std::string dot_escape(std::string_view s);

/// Aggregate statistics a Manager keeps about itself.  These are plain
/// always-on counters (no measurable overhead); the diag layer folds them
/// into its JSON export under the "bdd" phase.
struct ManagerStats {
  std::size_t live_nodes = 0;      ///< allocated and not freed
  std::size_t peak_nodes = 0;      ///< high-water mark of live_nodes
  std::size_t gc_runs = 0;         ///< completed garbage collections
  std::size_t gc_reclaimed = 0;    ///< total nodes reclaimed by GC
  std::uint64_t gc_pause_ns = 0;   ///< total wall time spent inside gc()
  std::size_t cache_clears = 0;    ///< computed-cache invalidations (by GC)
  std::size_t table_growths = 0;   ///< unique-table rehash/grow events
  std::size_t unique_hits = 0;     ///< mk() found an existing node
  std::size_t unique_misses = 0;   ///< mk() created a node
  std::size_t cache_hits = 0;      ///< computed-cache hits
  std::size_t cache_lookups = 0;   ///< computed-cache probes
  // Resource-governance counters (see guard::ResourceBudget).
  std::size_t soft_gc_runs = 0;     ///< GCs forced by the soft node limit
  std::size_t budget_aborts = 0;    ///< top-level ops aborted by exhaustion
  std::size_t exhaust_retries = 0;  ///< ops retried after a recovery GC
  std::size_t node_limit_hits = 0;  ///< hard node-limit violations in mk()
  std::size_t alloc_failures = 0;   ///< bad_alloc during table growth
  // Dynamic variable ordering (src/order; DESIGN.md §10).
  std::size_t reorder_runs = 0;    ///< completed Manager::reorder() passes
  std::size_t reorder_swaps = 0;   ///< adjacent-level swaps performed
  std::size_t reorder_aborts = 0;  ///< sift passes cut short by the budget
  std::size_t reorder_nodes_before = 0;  ///< live nodes entering last reorder
  std::size_t reorder_nodes_after = 0;   ///< live nodes leaving last reorder
  std::uint64_t reorder_time_ns = 0;     ///< total wall time inside reorder()
  /// Top-level calls per apply-style operation, indexed by ApplyOp.
  std::array<std::uint64_t, kNumApplyOps> apply_calls{};

  [[nodiscard]] std::uint64_t apply(ApplyOp op) const {
    return apply_calls[static_cast<std::size_t>(op)];
  }
};

/// Tuning knobs for a Manager.
struct ManagerOptions {
  /// log2 of the computed-cache slot count.
  std::uint32_t cache_log2_size = 18;
  /// Run GC when this many nodes are live; doubles when GC is ineffective.
  std::size_t gc_threshold = 1u << 18;
  /// Disable automatic garbage collection (explicit gc() still works).
  bool disable_auto_gc = false;
};

/// The BDD manager: owns all nodes, the unique table and the computed cache.
/// Create variables with new_var()/var(), combine with the Bdd operators.
class Manager {
 public:
  explicit Manager(std::uint32_t num_vars = 0,
                   const ManagerOptions& options = {});
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// The constant true / false functions.
  [[nodiscard]] Bdd one();
  [[nodiscard]] Bdd zero();

  /// Allocate a fresh variable at the bottom of the order; returns its index.
  std::uint32_t new_var();
  /// Current number of variables.
  [[nodiscard]] std::uint32_t num_vars() const {
    return static_cast<std::uint32_t>(num_vars_);
  }

  /// The projection function of variable v (must be < num_vars()).
  [[nodiscard]] Bdd var(std::uint32_t v);
  /// The negated projection function of variable v.
  [[nodiscard]] Bdd nvar(std::uint32_t v);
  /// Variable v if `positive`, else its negation.
  [[nodiscard]] Bdd literal(std::uint32_t v, bool positive) {
    return positive ? var(v) : nvar(v);
  }

  /// Conjunction of the positive literals of `vars` (a quantification cube).
  [[nodiscard]] Bdd cube(const std::vector<std::uint32_t>& vars);
  /// The minterm selecting exactly the given values of `vars`.
  [[nodiscard]] Bdd minterm(const std::vector<std::uint32_t>& vars,
                            const std::vector<bool>& values);

  /// If-then-else: (f AND g) OR (NOT f AND h).
  [[nodiscard]] Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

  /// Fused relational product: Exists cube . (f AND g).  The workhorse of
  /// image/preimage computation; never builds the full conjunction.
  [[nodiscard]] Bdd and_exists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Rename variables: result has variable map[v] wherever f has v.  The map
  /// must be injective on f's support and preserve relative variable order
  /// (checked); identity entries map[v] == v are allowed and typical.
  [[nodiscard]] Bdd rename(const Bdd& f, const std::vector<std::uint32_t>& map);

  /// Pick one satisfying assignment of f, as a full cube over `vars`
  /// (every variable in `vars` appears as a positive or negative literal).
  /// `vars` must be ascending and cover f's support.  f must be satisfiable.
  [[nodiscard]] Bdd pick_one_minterm(const Bdd& f,
                                     const std::vector<std::uint32_t>& vars);
  /// As above but returns the assignment as value bits parallel to `vars`.
  [[nodiscard]] std::vector<bool> pick_one_assignment(
      const Bdd& f, const std::vector<std::uint32_t>& vars);

  /// Enumerate all satisfying assignments of f over `vars` (ascending and
  /// covering f's support), invoking `visit` with the value bits for each.
  /// The number of assignments is 2^k in the worst case; intended for
  /// small sets (trace decoding, explicit enumeration).
  void for_each_assignment(
      const Bdd& f, const std::vector<std::uint32_t>& vars,
      const std::function<void(const std::vector<bool>&)>& visit);

  /// Force a garbage collection now.  All nodes unreachable from live Bdd
  /// handles are reclaimed; the computed cache is cleared.  When the audit
  /// toggle is on (see audits_enabled) the collection is followed by audit().
  void gc();

  /// Structural audit in the style of CUDD's Cudd_DebugCheck.  Verifies:
  ///
  ///   * unique-table canonicality: every live non-terminal is threaded in
  ///     exactly its own bucket chain, and no (var, lo, hi) triple occurs
  ///     twice (hash-consing never duplicated a node);
  ///   * ordering: every node's level is strictly above both children's
  ///     under the current variable order;
  ///   * level maps: var2level / level2var are inverse bijections, every
  ///     live node's variable has a level, and each reorder group occupies
  ///     a contiguous run of levels;
  ///   * reduction: no redundant lo == hi node survived mk();
  ///   * refcount census: every node's count covers its internal parents,
  ///     and the surplus over all nodes is covered by the live external
  ///     Bdd handles attached to this manager;
  ///   * free-list consistency: freed slots and the free list agree, and
  ///     live_nodes_ matches a fresh count;
  ///   * computed-cache validity: every valid entry references in-bounds,
  ///     live nodes, and a sample of not/and/or/xor entries is semantically
  ///     revalidated by evaluating operands and result on fixed
  ///     assignments.
  ///
  /// Returns "" when consistent, else a diagnostic naming the first
  /// violated invariant.
  [[nodiscard]] std::string audit_check() const;
  /// audit_check(), throwing std::logic_error on any violation.
  void audit() const;

  /// Number of live external Bdd handles attached to this manager.
  [[nodiscard]] std::size_t external_handles() const {
    return external_handles_;
  }

  /// Write the DAG rooted at the given functions in Graphviz DOT syntax.
  /// `names[v]` labels variable v (empty / short vector -> "v<i>").
  void dump_dot(std::ostream& os, const std::vector<Bdd>& roots,
                const std::vector<std::string>& names = {}) const;

  [[nodiscard]] const ManagerStats& stats() const {
    fold_ctx_stats();
    return stats_;
  }

  // -- resource governance ---------------------------------------------------
  // A Manager always carries a budget: the constructor installs the ambient
  // guard::ScopedBudget::current() (environment-derived when no scope is
  // active), and install_budget replaces it.  Kernels and fixpoint loops
  // check it at cooperative checkpoints and throw guard::ResourceExhausted
  // subclasses; the manager unwinds to an audit-clean state, so raising the
  // budget and rerunning the same query is always legal.

  /// Install `budget`, replacing the previous one and restarting the
  /// wall-clock deadline.
  void install_budget(const guard::ResourceBudget& budget);
  /// Remove every limit (including the environment-derived ones); the
  /// default recursion-depth guard stays in force.
  void clear_budget();
  /// The installed budget.
  [[nodiscard]] const guard::ResourceBudget& budget() const { return budget_; }
  /// Snapshot of consumption against the installed budget.
  [[nodiscard]] guard::BudgetSpent budget_spent() const;
  /// Approximate heap bytes owned by this manager (node table, unique
  /// table, computed cache, free list).
  [[nodiscard]] std::size_t memory_bytes() const;
  /// Cooperative checkpoint for long-running callers: throws
  /// guard::DeadlineExceeded / guard::MemoryLimitExceeded when the budget
  /// is exhausted.  `what` names the caller in the exception message.
  void checkpoint(const char* what);

  // -- dynamic variable ordering ---------------------------------------------
  // The manager keeps two inverse permutations over [0, num_vars):
  // var2level_ maps a variable index to its position in the order and
  // level2var_ maps a position back to the variable.  Invariants (audited):
  //
  //   * level2var_[var2level_[v]] == v for every v (inverse bijections);
  //   * every interior node's level is strictly above both children's
  //     (terminals sit below every variable);
  //   * each group (see group_vars) occupies a contiguous run of levels in
  //     its declared internal order.
  //
  // The unique table hashes on (var, lo, hi) -- variable indices, not
  // levels -- so buckets are stable under permutation and swap_levels only
  // touches the nodes of the one variable it moves.

  /// Current level (position in the order) of variable v.
  [[nodiscard]] std::uint32_t level_of_var(std::uint32_t v) const;
  /// The variable currently sitting at level `lvl`.
  [[nodiscard]] std::uint32_t var_at_level(std::uint32_t lvl) const;
  /// The whole order, top to bottom: element l is the variable at level l.
  [[nodiscard]] const std::vector<std::uint32_t>& current_order() const {
    return level2var_;
  }
  /// True while var2level is the identity (the fast paths stay exact).
  [[nodiscard]] bool identity_order() const { return displaced_vars_ == 0; }

  /// Swap the variables at levels `lvl` and `lvl + 1` (Rudell's adjacent
  /// swap).  Only nodes of the upper variable are rewritten, in place, so
  /// every external Bdd handle keeps denoting the same function.  Outside a
  /// reorder session this flushes the computed cache and (when audits are
  /// enabled) re-audits; inside a session the flush is deferred to
  /// reorder_session_end().  Must not be called from inside a kernel.
  void swap_levels(std::uint32_t lvl);

  /// Declare `vars` a reorder group: they must sit at adjacent levels (in
  /// the given order) and from now on sift as one block, preserving their
  /// relative order.  Used by the transition-system layer to pin each
  /// current/next rail pair together.
  void group_vars(const std::vector<std::uint32_t>& vars);
  /// The group id of variable v (== v for ungrouped variables).
  [[nodiscard]] std::uint32_t var_group(std::uint32_t v) const;

  /// Live interior nodes per variable index (diagnostics / sift ordering).
  [[nodiscard]] std::vector<std::size_t> var_node_counts() const;

  /// Run one full sifting pass now (order::sift with default options,
  /// honouring the installed budget: exhaustion aborts between block moves
  /// and rolls the in-flight block back to the best position seen).
  /// Returns false when there is nothing to do (fewer than two variables,
  /// a kernel or another reorder is active).  Defined in src/order.
  bool reorder();
  /// Enable/disable the automatic growth trigger: when live nodes have at
  /// least doubled since the last reorder (and exceed a small floor),
  /// maybe_collect() runs reorder() before the next top-level operation.
  void set_auto_reorder(bool on);
  [[nodiscard]] bool auto_reorder() const { return auto_reorder_; }

  /// Bracket a sequence of swap_levels calls: begin garbage-collects (so
  /// refcounts are exact) and suspends the hard node limit (sifting must
  /// never throw out of mk); end flushes the computed cache and re-audits.
  /// Used by the sifter; standalone swap_levels calls self-bracket.
  void reorder_session_begin();
  void reorder_session_end(bool audit_after = true);
  [[nodiscard]] bool in_reorder_session() const { return order_session_; }

  /// Tear down an in-progress reorder session after an abort (exhaustion
  /// escaping mid-sift): restore the best order seen this session (the
  /// sifter's own cooperative rollback never ran) and close the session,
  /// running the deferred cache flush and audit.  No-op outside a session.
  /// recover_after_abort() calls this first, so any exhaustion that
  /// unwinds through run_apply or Manager::reorder leaves no session
  /// dangling.  Fault-injection probes are suspended during the rollback.
  void abort_reorder_session();

  // -- snapshots (src/persist; DESIGN.md section 13) -------------------------
  // The shared DAG reachable from a set of roots can be written to a
  // versioned, checksummed binary snapshot and decoded into another (or a
  // later) manager.  Node indices are not preserved -- the encoding names
  // nodes by a deterministic traversal numbering -- but canonicity
  // guarantees the decoded roots denote the same functions.  Both members
  // are defined in src/persist (the format layer), like Manager::reorder()
  // in src/order.

  /// Decoded snapshot: roots[i] is the function saved under names[i].
  struct LoadedSnapshot {
    std::vector<Bdd> roots;
    std::vector<std::string> names;
  };

  /// Write a self-contained snapshot of the DAG reachable from `roots`
  /// (with the level map and pair-group metadata) to `os`.  `names[i]`
  /// labels roots[i]; missing names default to "root:<i>".  Throws
  /// persist::SnapshotError on I/O failure.
  void save_snapshot(std::ostream& os, const std::vector<Bdd>& roots,
                     const std::vector<std::string>& names = {}) const;

  /// Load a snapshot written by save_snapshot into this manager.  The
  /// manager must be freshly constructed (same variable count as the
  /// snapshot, no interior nodes): the saved order installs wholesale and
  /// the DAG decodes through mk(), then audit() gates the result.  Throws
  /// persist::SnapshotError (typed, recoverable) on any corruption.
  LoadedSnapshot load_snapshot(std::istream& is);

  // -- shared-memory parallelism (ts::ParallelExecutor; DESIGN.md §14) -------
  // A parallel region brackets one batch of concurrent kernel work: the
  // coordinator opens it (pre-reserving node capacity and worker contexts),
  // worker threads bind a context slot and run ordinary Bdd operations, and
  // the coordinator closes it after every worker has stopped.  Regions and
  // reorder sessions are mutually exclusive; GC and table growth are
  // deferred to region end.  With SYMCEX_THREADS=1 no region is ever
  // opened and the manager behaves exactly as before.

  /// Number of unique-table stripe locks (bucket index modulo kStripes).
  static constexpr std::size_t kStripes = 64;

  /// Open a parallel region for up to `workers` worker threads (slots
  /// 1..workers; slot 0 is the coordinator).  Creates missing worker
  /// contexts, pre-reserves node capacity so the node array never
  /// reallocates mid-region, and flips kernels to the concurrent paths.
  /// Throws std::logic_error when a region, kernel, or reorder session is
  /// already active.
  void parallel_region_begin(unsigned workers);
  /// Close the region: return unused slot pools to the free list, merge
  /// per-thread stats, run the deferred unique-table growth -- or, when a
  /// worker aborted, recover to an audit-clean state (same GC-and-flush
  /// protocol as a sequential abort).  All workers must have stopped.
  void parallel_region_end();
  /// Register the calling thread as worker `slot` (1-based; the region
  /// must provide that many slots).  The binding is thread-local and
  /// per-manager; undo with unbind_worker().
  void bind_worker(unsigned slot);
  void unbind_worker();
  [[nodiscard]] bool in_parallel_region() const {
    return concurrent_.load(std::memory_order_relaxed);
  }
  /// Has a worker aborted the current region?  Workers observe this flag
  /// at their poll points and unwind with WorkerCancelled.
  [[nodiscard]] bool parallel_region_aborted() const {
    return region_abort_.load(std::memory_order_relaxed);
  }
  /// Shared side of the stop-the-world gate: workers hold it while
  /// executing a task so gc()/audit()/swap_levels (exclusive side) can
  /// only run against a quiesced table.
  void gate_lock_shared() const { gate_mu_.lock_shared(); }
  void gate_unlock_shared() const { gate_mu_.unlock_shared(); }

 private:
  friend class Bdd;
  friend class FixpointGuard;
  friend struct symcex::persist::ManagerAccess;

  static constexpr std::uint32_t kFalse = 0;
  static constexpr std::uint32_t kTrue = 1;
  static constexpr std::uint32_t kTermVar = 0xFFFFFFFFu;  // terminal "level"
  static constexpr std::uint32_t kFreeVar = 0xFFFFFFFEu;  // freed slot marker
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;      // chain terminator

  struct Node {
    std::uint32_t var;   // variable index (level via var2level_);
                         // kTermVar for terminals, kFreeVar when freed
    std::uint32_t lo;    // else-child
    std::uint32_t hi;    // then-child
    std::uint32_t next;  // unique-table chain
    std::uint32_t refs;  // parents + external handles (saturating)
  };

  struct CacheEntry {
    std::uint32_t op = 0;
    std::uint32_t f = 0, g = 0, h = 0;
    std::uint32_t result = 0;
    bool valid = false;
  };

  /// Per-thread evaluation state.  Slot 0 belongs to the coordinator (the
  /// thread that owns the manager); worker slots are created lazily by
  /// parallel_region_begin and bound to threads via bind_worker.  Each
  /// context carries its own computed cache, recursion depth, deadline
  /// poll tick, node slot pool, and stat deltas -- the hot-path counters
  /// that would otherwise race -- which fold_ctx_stats() merges into
  /// ManagerStats whenever no region is open.  alignas keeps contexts on
  /// distinct cache lines so worker counters do not false-share.
  struct alignas(64) ThreadCtx {
    std::vector<CacheEntry> cache;       // private computed cache
    std::size_t depth = 0;               // live guarded kernel frames
    std::uint32_t poll = 0;              // deadline/abort poll tick
    std::vector<std::uint32_t> slot_pool;  // pre-allocated node slots
    // Stat deltas, folded into ManagerStats by fold_ctx_stats().
    std::size_t unique_hits = 0;
    std::size_t unique_misses = 0;
    std::size_t cache_hits = 0;
    std::size_t cache_lookups = 0;
    std::size_t node_limit_hits = 0;
    std::size_t alloc_failures = 0;
    std::array<std::uint64_t, kNumApplyOps> apply_calls{};
  };

  /// The calling thread's context: its bound worker context inside a
  /// parallel region, the coordinator context (slot 0) otherwise.
  [[nodiscard]] ThreadCtx& ctx() {
    return (t_worker_mgr == this) ? *t_worker_ctx : *ctxs_.front();
  }
  [[nodiscard]] const ThreadCtx& ctx() const {
    return (t_worker_mgr == this) ? *t_worker_ctx : *ctxs_.front();
  }

  enum Op : std::uint32_t {
    kOpNot = 1,
    kOpAnd,
    kOpOr,
    kOpXor,
    kOpIte,
    kOpExists,
    kOpAndExists,
    kOpConstrain,
    kOpRestrictMin,
    kOpCompose,
  };

  // -- node plumbing -------------------------------------------------------
  std::uint32_t mk(std::uint32_t var, std::uint32_t lo, std::uint32_t hi);
  /// mk() under a parallel region: probe-and-insert entirely under the
  /// bucket's stripe lock (the re-probe a lock-split would need collapses
  /// into one critical section), allocation from the thread's slot pool.
  std::uint32_t mk_concurrent(std::uint32_t var, std::uint32_t lo,
                              std::uint32_t hi);
  /// Refill `c.slot_pool` with up to kAllocChunk free slots under the
  /// allocation lock; throws ParallelCapacityExceeded when the region's
  /// pre-reserved capacity is gone.
  void refill_slot_pool(ThreadCtx& c);
  void ref(std::uint32_t idx);
  void deref(std::uint32_t idx);
  /// ref/deref from the Bdd handle lifecycle: additionally maintain the
  /// external-handle census that audit_check() verifies against.
  void handle_ref(std::uint32_t idx);
  void handle_deref(std::uint32_t idx);
  /// Level of the node at `idx`: the position of its variable in the
  /// current order.  Terminals (kTermVar) and freed slots (kFreeVar)
  /// compare above every variable, as before.
  [[nodiscard]] std::uint32_t level(std::uint32_t idx) const {
    const std::uint32_t v = nodes_[idx].var;
    return v >= num_vars_ ? v : var2level_[v];
  }
  void grow_table();
  [[nodiscard]] std::size_t bucket_of(std::uint32_t var, std::uint32_t lo,
                                      std::uint32_t hi) const;
  void maybe_collect();
  void maybe_auto_reorder();

  // -- reordering plumbing --------------------------------------------------
  /// Remove node `n` from its unique-table bucket chain.
  void unlink_node(std::uint32_t n);
  /// Thread node `n` at the head of its unique-table bucket chain.
  void link_node(std::uint32_t n);
  /// Drop one reference from `idx` and eagerly reclaim it (and any children
  /// that become unreferenced) when the count hits zero.  Only used by
  /// swap_levels, where refcounts are exact (session begin GCed).
  void deref_reclaim(std::uint32_t idx);
  /// Invalidate every computed-cache entry.
  void flush_cache();

  // -- computed cache ------------------------------------------------------
  [[nodiscard]] bool cache_get(std::uint32_t op, std::uint32_t f,
                               std::uint32_t g, std::uint32_t h,
                               std::uint32_t& out);
  void cache_put(std::uint32_t op, std::uint32_t f, std::uint32_t g,
                 std::uint32_t h, std::uint32_t result);

  // -- resource governance (internals) -------------------------------------
  /// One guarded kernel recursion frame: counts the calling thread's depth
  /// against the budget and polls the slow path (wall-clock deadline and,
  /// in a parallel region, the cross-worker abort flag) every few thousand
  /// frames.  Cost is two increments per recursive call.
  struct [[nodiscard]] Frame {
    explicit Frame(Manager& m) : m_(m), ctx_(m.ctx()) {
      // Poll first: if it throws, depth is untouched.  The depth throw
      // fires after the increment, so throw_depth_exceeded compensates
      // for the destructor that will never run.
      if ((++ctx_.poll & 0xFFFu) == 0) m_.poll_tick();
      if (++ctx_.depth > m_.depth_limit_) m_.throw_depth_exceeded(ctx_);
    }
    ~Frame() { --ctx_.depth; }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;
    Manager& m_;
    ThreadCtx& ctx_;
  };

  /// Frame's slow path (every 4096th frame): wall-clock deadline check and
  /// region-abort observation (throws WorkerCancelled on a worker whose
  /// sibling already failed).
  void poll_tick();

  /// RAII exclusive side of the stop-the-world gate, re-entrant on the
  /// owning thread (gc() -> audit() nests; reorder sessions wrap both).
  /// Workers hold the shared side per task, so acquiring this blocks until
  /// the table is quiescent.
  struct [[nodiscard]] Quiesce {
    explicit Quiesce(const Manager& m);
    ~Quiesce();
    Quiesce(const Quiesce&) = delete;
    Quiesce& operator=(const Quiesce&) = delete;
    const Manager& m_;
    bool outer_;
  };

  /// Run a kernel under the exhaustion-recovery protocol: on a node-limit
  /// or allocation failure, GC (reclaiming the aborted kernel's orphans
  /// and flushing the computed cache) and retry once; if the limit recurs
  /// -- or on any other exhaustion -- recover and rethrow.  Defined in
  /// bdd.cpp (every use is in that translation unit).
  template <typename Kernel>
  Bdd run_apply(ApplyOp op, Kernel&& kernel);
  /// GC after a mid-flight abort so the manager is audit-clean: the
  /// aborted kernel's orphan nodes are reclaimed and the computed cache
  /// (which may reference them) is flushed.
  void recover_after_abort();
  /// Bubble every variable to its level in `target` (a level -> variable
  /// permutation) via adjacent swaps.  Caller brackets with a session.
  void restore_order(const std::vector<std::uint32_t>& target);
  /// Does every reorder group currently occupy contiguous levels?  Used
  /// to keep mid-block-move layouts out of the session-best order (an
  /// abort restores that order, and the audit rejects split groups).
  [[nodiscard]] bool groups_contiguous() const;
  [[noreturn]] void throw_depth_exceeded(ThreadCtx& ctx);
  void check_deadline(const char* what);
  [[nodiscard]] std::uint64_t elapsed_ms() const;
  /// memory_bytes() body without the concurrent-mode allocation lock.
  [[nodiscard]] std::size_t memory_bytes_unlocked() const;
  /// Merge every context's stat deltas into stats_ and zero them.  No-op
  /// while a region is open (workers are still writing their deltas).
  void fold_ctx_stats() const;

  // -- recursive kernels (raw indices; GC never runs inside them) ----------
  std::uint32_t not_rec(std::uint32_t f);
  std::uint32_t and_rec(std::uint32_t f, std::uint32_t g);
  std::uint32_t or_rec(std::uint32_t f, std::uint32_t g);
  std::uint32_t xor_rec(std::uint32_t f, std::uint32_t g);
  std::uint32_t ite_rec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  std::uint32_t exists_rec(std::uint32_t f, std::uint32_t cube);
  std::uint32_t and_exists_rec(std::uint32_t f, std::uint32_t g,
                               std::uint32_t cube);
  std::uint32_t constrain_rec(std::uint32_t f, std::uint32_t c);
  std::uint32_t restrict_min_rec(std::uint32_t f, std::uint32_t c);
  std::uint32_t compose_rec(std::uint32_t f, std::uint32_t var,
                            std::uint32_t g);

  [[nodiscard]] Bdd wrap(std::uint32_t idx) { return Bdd(this, idx); }
  void check_mine(const Bdd& b, const char* what) const;
  void count_apply(ApplyOp op) {
    ++stats_.apply_calls[static_cast<std::size_t>(op)];
  }
  /// Fold this manager's stats into a diag registry (phase "bdd").
  void fold_stats_into_diag(diag::Registry& registry) const;

  // Helpers used by Bdd methods.
  std::uint32_t restrict_rec(std::uint32_t f, std::uint32_t var, bool value,
                             std::unordered_map<std::uint32_t, std::uint32_t>& memo);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> buckets_;   // unique table, power-of-two size
  std::vector<std::uint32_t> free_list_;
  std::size_t num_vars_ = 0;
  std::size_t live_nodes_ = 0;
  std::size_t external_handles_ = 0;
  std::size_t gc_threshold_ = 0;
  bool auto_gc_ = true;
  mutable ManagerStats stats_;  // mutable: stats() folds ctx deltas lazily
  int diag_source_id_ = -1;  // registration with diag::Registry::global()

  // Per-thread contexts (slot 0 = coordinator; see ThreadCtx) and the
  // parallel-region machinery.  stripe_mu_[bucket & (kStripes-1)] guards a
  // bucket's chain -- the stripe is a function of the BUCKET index, not the
  // raw hash, because two distinct hashes can collide into one bucket under
  // the table mask while differing modulo kStripes; the bucket count is
  // frozen for the duration of a region so the mapping is stable.
  std::vector<std::unique_ptr<ThreadCtx>> ctxs_;
  std::uint32_t cache_log2_ = 18;        // sizes worker caches at region begin
  std::atomic<bool> concurrent_{false};  // a parallel region is open
  std::atomic<bool> region_abort_{false};  // a worker failed; others unwind
  std::array<std::mutex, kStripes> stripe_mu_;
  mutable std::mutex alloc_mu_;  // free list / node-array tail / live count
  static constexpr std::size_t kAllocChunk = 256;  // slots per pool refill
  // Stop-the-world gate (see Quiesce / gate_lock_shared).
  mutable std::shared_mutex gate_mu_;
  mutable std::atomic<std::thread::id> gate_owner_{};
  // Thread-local worker binding (bind_worker): which manager this thread
  // is currently a worker of, and its context.  Reads for a different
  // manager fall through to that manager's coordinator context.
  inline static thread_local Manager* t_worker_mgr = nullptr;
  inline static thread_local ThreadCtx* t_worker_ctx = nullptr;

  // Variable-order state (see the public ordering section).
  std::vector<std::uint32_t> var2level_;  // variable index -> level
  std::vector<std::uint32_t> level2var_;  // level -> variable index
  std::vector<std::uint32_t> group_of_;   // variable index -> group id
  std::size_t displaced_vars_ = 0;  // #vars with var2level_[v] != v
  bool order_session_ = false;      // inside reorder_session brackets
  bool in_reorder_ = false;         // inside Manager::reorder()
  bool restoring_order_ = false;    // inside restore_order (no best-tracking)
  // Best order seen inside the current reorder session and its live-node
  // count, maintained by swap_levels; abort_reorder_session restores it.
  std::vector<std::uint32_t> session_best_order_;
  std::size_t session_best_nodes_ = 0;
  bool auto_reorder_ = false;       // growth-triggered sifting enabled
  std::size_t reorder_baseline_ = 2;  // live nodes after the last reorder
  static constexpr std::size_t kReorderFloor = 4096;  // min live to trigger

  // Resource governance state.  The limit fields cache the installed
  // budget's limits in checkpoint-friendly form (max() / 0 = "off") so the
  // hot paths test a single member.
  guard::ResourceBudget budget_;
  std::size_t depth_limit_ = std::numeric_limits<std::size_t>::max();
  std::size_t node_hard_limit_ = 0;   // 0 = unlimited
  std::size_t node_soft_limit_ = 0;   // 0 = none
  std::size_t memory_limit_ = 0;      // 0 = unlimited
  std::uint64_t deadline_ns_ = 0;     // absolute steady-clock ns; 0 = none
  std::uint64_t budget_epoch_ns_ = 0;  // steady-clock ns at install
  std::uint64_t margin_ns_ = 0;  // checkpoint-hook margin before deadline
  std::size_t last_soft_gc_live_ = 0;  // thrash guard for soft GCs
};

/// Cooperative guard for fixpoint loops (reachability, EU/EG, the
/// Emerson-Lei loop, invariant BFS): call tick() once per iteration.
/// Counts iterations against the manager's budget and polls the deadline
/// and memory ceiling; throws guard::IterationLimitExceeded /
/// DeadlineExceeded / MemoryLimitExceeded with the iteration count in the
/// carried BudgetSpent.
///
/// Threading: fixpoint loops run on the coordinator only -- the parallel
/// engine (DESIGN.md §14) fans each *iteration body* out over slices, it
/// never splits the loop itself -- so tick() is always called outside a
/// parallel region and needs no synchronisation.  Deadline/memory probes
/// inside worker sweeps happen at the managers' per-thread poll points
/// instead.
class FixpointGuard {
 public:
  FixpointGuard(Manager& mgr, const char* loop_name)
      : mgr_(mgr), name_(loop_name) {}
  void tick();
  [[nodiscard]] std::size_t iterations() const { return iterations_; }

 private:
  Manager& mgr_;
  const char* name_;
  std::size_t iterations_ = 0;
};

/// Should gc() follow each collection with Manager::audit()?  Defaults to
/// on in debug builds (NDEBUG not defined) and to the SYMCEX_AUDIT
/// environment toggle otherwise; override with set_audits_enabled().
[[nodiscard]] bool audits_enabled();
void set_audits_enabled(bool on);

}  // namespace symcex::bdd
