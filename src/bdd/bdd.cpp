#include "bdd/bdd.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <new>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "diag/metrics.hpp"
#include "guard/fault.hpp"

namespace symcex::bdd {

namespace {

/// Mixes three 32-bit words into a table index seed (Jenkins-style).
std::size_t hash3(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  std::uint64_t x = (static_cast<std::uint64_t>(a) << 32) ^ b;
  x ^= static_cast<std::uint64_t>(c) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 32;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 32;
  return static_cast<std::size_t>(x);
}

constexpr std::uint32_t kMaxRefs = std::numeric_limits<std::uint32_t>::max();

std::atomic<bool>& audits_flag() {
#ifndef NDEBUG
  constexpr bool kDefault = true;  // debug builds audit after every GC
#else
  constexpr bool kDefault = false;
#endif
  static std::atomic<bool> flag{kDefault || diag::env_flag("SYMCEX_AUDIT")};
  return flag;
}

}  // namespace

bool audits_enabled() {
  return audits_flag().load(std::memory_order_relaxed);
}

void set_audits_enabled(bool on) {
  audits_flag().store(on, std::memory_order_relaxed);
}

const char* apply_op_name(ApplyOp op) {
  switch (op) {
    case ApplyOp::kNot:
      return "not";
    case ApplyOp::kAnd:
      return "and";
    case ApplyOp::kOr:
      return "or";
    case ApplyOp::kXor:
      return "xor";
    case ApplyOp::kIte:
      return "ite";
    case ApplyOp::kExists:
      return "exists";
    case ApplyOp::kAndExists:
      return "and_exists";
    case ApplyOp::kConstrain:
      return "constrain";
    case ApplyOp::kRestrictMin:
      return "restrict_min";
    case ApplyOp::kRestrictVar:
      return "restrict_var";
    case ApplyOp::kCompose:
      return "compose";
    case ApplyOp::kRename:
      return "rename";
    case ApplyOp::kCount:
      break;
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(Manager* mgr, std::uint32_t idx) : mgr_(mgr), idx_(idx) {
  mgr_->handle_ref(idx_);
}

Bdd::Bdd(const Bdd& other) : mgr_(other.mgr_), idx_(other.idx_) {
  if (mgr_ != nullptr) mgr_->handle_ref(idx_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
  other.mgr_ = nullptr;
  other.idx_ = 0;
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->handle_ref(other.idx_);
  if (mgr_ != nullptr) mgr_->handle_deref(idx_);
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->handle_deref(idx_);
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  other.mgr_ = nullptr;
  other.idx_ = 0;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->handle_deref(idx_);
}

bool Bdd::is_true() const { return mgr_ != nullptr && idx_ == Manager::kTrue; }
bool Bdd::is_false() const {
  return mgr_ != nullptr && idx_ == Manager::kFalse;
}

Bdd Bdd::operator!() const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  return mgr_->run_apply(ApplyOp::kNot, [&] { return mgr_->not_rec(idx_); });
}

Bdd Bdd::operator&(const Bdd& g) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  mgr_->check_mine(g, "operator&");
  return mgr_->run_apply(ApplyOp::kAnd,
                         [&] { return mgr_->and_rec(idx_, g.idx_); });
}

Bdd Bdd::operator|(const Bdd& g) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  mgr_->check_mine(g, "operator|");
  return mgr_->run_apply(ApplyOp::kOr,
                         [&] { return mgr_->or_rec(idx_, g.idx_); });
}

Bdd Bdd::operator^(const Bdd& g) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  mgr_->check_mine(g, "operator^");
  return mgr_->run_apply(ApplyOp::kXor,
                         [&] { return mgr_->xor_rec(idx_, g.idx_); });
}

Bdd Bdd::exists(const Bdd& cube) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  mgr_->check_mine(cube, "exists");
  return mgr_->run_apply(ApplyOp::kExists,
                         [&] { return mgr_->exists_rec(idx_, cube.idx_); });
}

Bdd Bdd::forall(const Bdd& cube) const {
  // forall x. f  ==  !exists x. !f
  return !(!*this).exists(cube);
}

Bdd Bdd::constrain(const Bdd& care) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  mgr_->check_mine(care, "constrain");
  if (care.is_false()) {
    throw std::invalid_argument("Bdd::constrain: empty care set");
  }
  return mgr_->run_apply(ApplyOp::kConstrain, [&] {
    return mgr_->constrain_rec(idx_, care.idx_);
  });
}

Bdd Bdd::minimize(const Bdd& care) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  mgr_->check_mine(care, "minimize");
  if (care.is_false()) {
    throw std::invalid_argument("Bdd::minimize: empty care set");
  }
  return mgr_->run_apply(ApplyOp::kRestrictMin, [&] {
    return mgr_->restrict_min_rec(idx_, care.idx_);
  });
}

Bdd Bdd::compose(std::uint32_t var, const Bdd& g) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  mgr_->check_mine(g, "compose");
  return mgr_->run_apply(ApplyOp::kCompose, [&] {
    return mgr_->compose_rec(idx_, var, g.idx_);
  });
}

Bdd Bdd::restrict_var(std::uint32_t var, bool value) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  // The memo lives inside the kernel closure so an exhaustion retry
  // starts from a clean (post-GC) slate.
  return mgr_->run_apply(ApplyOp::kRestrictVar, [&] {
    std::unordered_map<std::uint32_t, std::uint32_t> memo;
    return mgr_->restrict_rec(idx_, var, value, memo);
  });
}

std::size_t Bdd::dag_size() const {
  if (mgr_ == nullptr) return 0;
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack{idx_};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (mgr_->level(n) != Manager::kTermVar) {
      stack.push_back(mgr_->nodes_[n].lo);
      stack.push_back(mgr_->nodes_[n].hi);
    }
  }
  return seen.size();
}

std::vector<std::uint32_t> Bdd::support() const {
  if (mgr_ == nullptr) return {};
  std::unordered_set<std::uint32_t> seen;
  std::unordered_set<std::uint32_t> vars;
  std::vector<std::uint32_t> stack{idx_};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (mgr_->level(n) == Manager::kTermVar) continue;
    vars.insert(mgr_->nodes_[n].var);
    stack.push_back(mgr_->nodes_[n].lo);
    stack.push_back(mgr_->nodes_[n].hi);
  }
  std::vector<std::uint32_t> out(vars.begin(), vars.end());
  std::sort(out.begin(), out.end());
  return out;
}

double Bdd::sat_count(std::uint32_t num_vars) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  // Saturating arithmetic: counts that exceed the double range clamp to
  // kSaturated instead of overflowing to infinity (which a naive
  // `memo * std::pow(2.0, skipped)` does from ~1024 free variables up,
  // poisoning everything downstream -- count_states, restart bounds).
  // ldexp is exact below the saturation point, so small counts keep their
  // integer-exact values.
  constexpr double kSaturated = std::numeric_limits<double>::max();
  const auto mul_pow2 = [](double x, std::int64_t k) {
    if (x == 0.0) return 0.0;
    k = std::clamp<std::int64_t>(k, -8192, 8192);
    const double r = std::ldexp(x, static_cast<int>(k));
    return std::isinf(r) ? kSaturated : r;
  };
  const auto sat_add = [](double a, double b) {
    const double r = a + b;
    return std::isinf(r) ? kSaturated : r;
  };
  // count(n) = number of assignments to variables strictly below n's level.
  // The recursion walks LEVELS (order-independent: a function's count does
  // not depend on the variable order), first over the manager's own
  // variable universe; the result is rescaled to the requested `num_vars`
  // universe at the end.
  const auto mgr_vars = static_cast<std::uint32_t>(mgr_->num_vars_);
  std::unordered_map<std::uint32_t, double> memo;
  // Iterative post-order to avoid deep recursion on wide functions.
  struct Frame {
    std::uint32_t node;
    bool expanded;
  };
  std::vector<Frame> stack{{idx_, false}};
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (memo.contains(n)) continue;
    if (mgr_->level(n) == Manager::kTermVar) {
      memo[n] = (n == Manager::kTrue) ? 1.0 : 0.0;
      continue;
    }
    const auto& nd = mgr_->nodes_[n];
    if (!expanded) {
      stack.push_back({n, true});
      stack.push_back({nd.lo, false});
      stack.push_back({nd.hi, false});
      continue;
    }
    auto weight = [&](std::uint32_t child) {
      const std::uint32_t child_level =
          mgr_->level(child) == Manager::kTermVar ? mgr_vars
                                                  : mgr_->level(child);
      const std::uint32_t skipped = child_level - mgr_->level(n) - 1;
      return mul_pow2(memo.at(child), skipped);
    };
    memo[n] = sat_add(weight(nd.lo), weight(nd.hi));
  }
  const std::uint32_t top_level =
      mgr_->level(idx_) == Manager::kTermVar ? mgr_vars : mgr_->level(idx_);
  const double over_mgr = mul_pow2(memo.at(idx_), top_level);
  // Each requested variable beyond the manager's doubles the count; each
  // manager variable beyond the requested universe (necessarily outside
  // the support) halves it back out.  ldexp keeps both directions exact.
  return mul_pow2(over_mgr, static_cast<std::int64_t>(num_vars) -
                                static_cast<std::int64_t>(mgr_vars));
}

bool Bdd::eval(const std::vector<bool>& assignment) const {
  if (mgr_ == nullptr) throw std::logic_error("Bdd: operation on null handle");
  std::uint32_t n = idx_;
  while (mgr_->level(n) != Manager::kTermVar) {
    const auto& nd = mgr_->nodes_[n];
    if (nd.var >= assignment.size()) {
      throw std::invalid_argument("Bdd::eval: assignment too short");
    }
    n = assignment[nd.var] ? nd.hi : nd.lo;
  }
  return n == Manager::kTrue;
}

std::string Bdd::cube_string(const std::vector<std::string>& names) const {
  if (mgr_ == nullptr) return "<null>";
  if (is_true()) return "true";
  if (is_false()) return "false";
  std::string out;
  std::uint32_t n = idx_;
  while (mgr_->level(n) != Manager::kTermVar) {
    const auto& nd = mgr_->nodes_[n];
    const bool positive = nd.lo == Manager::kFalse;
    const bool negative = nd.hi == Manager::kFalse;
    if (!positive && !negative) {
      throw std::invalid_argument("Bdd::cube_string: not a cube");
    }
    if (!out.empty()) out += " & ";
    if (negative) out += '!';
    if (nd.var < names.size() && !names[nd.var].empty()) {
      out += names[nd.var];
    } else {
      out += 'v';
      out += std::to_string(nd.var);
    }
    n = positive ? nd.hi : nd.lo;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Manager: construction and node plumbing
// ---------------------------------------------------------------------------

Manager::Manager(std::uint32_t num_vars, const ManagerOptions& options)
    : gc_threshold_(options.gc_threshold),
      auto_gc_(!options.disable_auto_gc),
      cache_log2_(options.cache_log2_size) {
  nodes_.reserve(1u << 12);
  // Terminals occupy slots 0 (false) and 1 (true) and are never collected.
  nodes_.push_back({kTermVar, kFalse, kFalse, kNil, kMaxRefs});
  nodes_.push_back({kTermVar, kTrue, kTrue, kNil, kMaxRefs});
  live_nodes_ = 2;
  stats_.live_nodes = live_nodes_;
  stats_.peak_nodes = live_nodes_;
  buckets_.assign(1u << 12, kNil);
  // Fault site "cache": the computed cache is the largest single
  // allocation a fresh manager makes; its failure surfaces as the same
  // bad_alloc a real exhaustion would raise from assign().
  if (guard::fault_fire(guard::FaultKind::kAlloc, "cache")) {
    throw std::bad_alloc{};
  }
  // Context slot 0 is the coordinator's; worker slots are created by
  // parallel_region_begin.
  ctxs_.push_back(std::make_unique<ThreadCtx>());
  ctxs_.front()->cache.assign(std::size_t{1} << options.cache_log2_size,
                              CacheEntry{});
  for (std::uint32_t i = 0; i < num_vars; ++i) new_var();
  // Dynamic reordering is opt-in: SYMCEX_REORDER arms the growth trigger
  // for every manager; CheckOptions::reorder overrides per checker.
  auto_reorder_ = diag::env_flag("SYMCEX_REORDER");
  reorder_baseline_ = live_nodes_;
  // Every manager is born budgeted: the innermost guard::ScopedBudget, or
  // the environment-derived default (SYMCEX_NODE_LIMIT, ...).  This is how
  // budgets reach managers libraries construct privately, e.g. the product
  // manager inside automata::check_containment.
  install_budget(guard::ScopedBudget::current());
  // Live source: exports snapshot this manager's stats while it is alive.
  diag_source_id_ = diag::Registry::global().register_source(
      [this](diag::Registry& r) { fold_stats_into_diag(r); });
}

Manager::~Manager() {
  // Retire: fold the final numbers into the registry permanently so the
  // at-exit report still accounts for managers destroyed before it runs.
  auto& registry = diag::Registry::global();
  if (diag::enabled()) fold_stats_into_diag(registry);
  registry.unregister_source(diag_source_id_);
}

void Manager::fold_ctx_stats() const {
  // Workers are still writing their deltas while a region is open; the
  // coordinator merges once at parallel_region_end.
  if (concurrent_.load(std::memory_order_relaxed)) return;
  for (const auto& c : ctxs_) {
    stats_.unique_hits += c->unique_hits;
    c->unique_hits = 0;
    stats_.unique_misses += c->unique_misses;
    c->unique_misses = 0;
    stats_.cache_hits += c->cache_hits;
    c->cache_hits = 0;
    stats_.cache_lookups += c->cache_lookups;
    c->cache_lookups = 0;
    stats_.node_limit_hits += c->node_limit_hits;
    c->node_limit_hits = 0;
    stats_.alloc_failures += c->alloc_failures;
    c->alloc_failures = 0;
    for (std::size_t i = 0; i < kNumApplyOps; ++i) {
      stats_.apply_calls[i] += c->apply_calls[i];
      c->apply_calls[i] = 0;
    }
  }
}

void Manager::fold_stats_into_diag(diag::Registry& r) const {
  fold_ctx_stats();
  constexpr std::string_view kPhase = "bdd";
  r.add_in(kPhase, "gc_runs", stats_.gc_runs);
  r.add_in(kPhase, "gc_reclaimed", stats_.gc_reclaimed);
  r.add_in(kPhase, "cache_clears", stats_.cache_clears);
  r.add_in(kPhase, "table_growths", stats_.table_growths);
  r.add_in(kPhase, "unique_hits", stats_.unique_hits);
  r.add_in(kPhase, "unique_misses", stats_.unique_misses);
  r.add_in(kPhase, "cache_hits", stats_.cache_hits);
  r.add_in(kPhase, "cache_lookups", stats_.cache_lookups);
  r.add_in(kPhase, "soft_gc_runs", stats_.soft_gc_runs);
  r.add_in(kPhase, "budget_aborts", stats_.budget_aborts);
  r.add_in(kPhase, "exhaust_retries", stats_.exhaust_retries);
  r.add_in(kPhase, "node_limit_hits", stats_.node_limit_hits);
  r.add_in(kPhase, "alloc_failures", stats_.alloc_failures);
  if (stats_.gc_runs > 0) {
    r.timer_add_in(kPhase, "gc_pause", stats_.gc_pause_ns, stats_.gc_runs);
  }
  if (stats_.reorder_runs > 0 || stats_.reorder_swaps > 0) {
    r.add_in(kPhase, "reorder_runs", stats_.reorder_runs);
    r.add_in(kPhase, "reorder_swaps", stats_.reorder_swaps);
    r.add_in(kPhase, "reorder_aborts", stats_.reorder_aborts);
    r.gauge_set_in(kPhase, "reorder_nodes_before",
                   static_cast<double>(stats_.reorder_nodes_before));
    r.gauge_set_in(kPhase, "reorder_nodes_after",
                   static_cast<double>(stats_.reorder_nodes_after));
    if (stats_.reorder_runs > 0) {
      r.timer_add_in(kPhase, "reorder_time", stats_.reorder_time_ns,
                     stats_.reorder_runs);
    }
  }
  r.gauge_set_in(kPhase, "peak_nodes",
                 static_cast<double>(stats_.peak_nodes));
  for (std::size_t i = 0; i < kNumApplyOps; ++i) {
    if (stats_.apply_calls[i] == 0) continue;
    r.add_in(kPhase,
             std::string("apply.") +
                 apply_op_name(static_cast<ApplyOp>(i)),
             stats_.apply_calls[i]);
  }
}

Bdd Manager::one() { return wrap(kTrue); }
Bdd Manager::zero() { return wrap(kFalse); }

std::uint32_t Manager::new_var() {
  const auto v = static_cast<std::uint32_t>(num_vars_);
  ++num_vars_;
  // A fresh variable joins at the bottom of the order, in its own
  // singleton reorder group; var2level stays a bijection by construction.
  var2level_.push_back(v);
  level2var_.push_back(v);
  group_of_.push_back(v);
  return v;
}

Bdd Manager::var(std::uint32_t v) {
  if (v >= num_vars_) throw std::invalid_argument("Manager::var: unknown var");
  return wrap(mk(v, kFalse, kTrue));
}

Bdd Manager::nvar(std::uint32_t v) {
  if (v >= num_vars_) {
    throw std::invalid_argument("Manager::nvar: unknown var");
  }
  return wrap(mk(v, kTrue, kFalse));
}

std::size_t Manager::bucket_of(std::uint32_t var, std::uint32_t lo,
                               std::uint32_t hi) const {
  return hash3(var, lo, hi) & (buckets_.size() - 1);
}

std::uint32_t Manager::mk(std::uint32_t var, std::uint32_t lo,
                          std::uint32_t hi) {
  if (lo == hi) return lo;  // reduction rule
  if (concurrent_.load(std::memory_order_relaxed)) {
    return mk_concurrent(var, lo, hi);
  }
  ThreadCtx& c = *ctxs_.front();
  const std::size_t b = bucket_of(var, lo, hi);
  for (std::uint32_t n = buckets_[b]; n != kNil; n = nodes_[n].next) {
    const Node& nd = nodes_[n];
    if (nd.var == var && nd.lo == lo && nd.hi == hi) {
      ++c.unique_hits;
      return n;
    }
  }
  ++c.unique_misses;
  // The hard ceiling is suspended inside a reorder session: sifting must
  // never throw out of mk (transient growth there is bounded by the
  // sifter's own max-growth rule and rolled back).
  if (node_hard_limit_ != 0 && live_nodes_ >= node_hard_limit_ &&
      !order_session_) {
    // Hard ceiling: GC cannot run here (the caller's kernel holds raw
    // zero-ref indices on the C++ stack), so throw; run_apply reclaims
    // the aborted kernel's orphans, flushes the cache and retries once.
    ++stats_.node_limit_hits;
    throw guard::NodeLimitExceeded(
        "Manager::mk: live-node limit (" +
            std::to_string(node_hard_limit_) + ") exceeded",
        budget_spent());
  }
  std::uint32_t idx;
  if (!free_list_.empty()) {
    idx = free_list_.back();
    free_list_.pop_back();
  } else {
    // Reserve-before-link: secure capacity before touching any shared
    // structure, so a failed reallocation cannot leave a half-inserted
    // node.  A bad_alloc surfaces as AllocationFailed, which run_apply
    // answers with a GC and one retry.
    try {
      // Fault site "mk": the Nth fresh node allocation fails, exercising
      // the GC-and-retry-once protocol below exactly as a real bad_alloc
      // would.
      if (guard::fault_fire(guard::FaultKind::kAlloc, "mk")) {
        throw std::bad_alloc{};
      }
      if (nodes_.size() == nodes_.capacity()) {
        nodes_.reserve(nodes_.capacity() * 2);
      }
      nodes_.push_back(Node{});
    } catch (const std::bad_alloc&) {
      ++stats_.alloc_failures;
      throw guard::AllocationFailed("Manager::mk: node table growth failed",
                                    budget_spent());
    }
    idx = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  ref(lo);
  ref(hi);
  Node& nd = nodes_[idx];
  nd.var = var;
  nd.lo = lo;
  nd.hi = hi;
  nd.refs = 0;
  nd.next = buckets_[b];
  buckets_[b] = idx;
  ++live_nodes_;
  stats_.live_nodes = live_nodes_;
  stats_.peak_nodes = std::max(stats_.peak_nodes, live_nodes_);
  if (live_nodes_ > 4 * buckets_.size()) grow_table();
  return idx;
}

std::uint32_t Manager::mk_concurrent(std::uint32_t var, std::uint32_t lo,
                                     std::uint32_t hi) {
  ThreadCtx& c = ctx();
  const std::size_t b = bucket_of(var, lo, hi);
  // Probe and insert under one stripe critical section: splitting them
  // would need a re-probe anyway (two workers can miss the same triple
  // concurrently and insert duplicates, breaking canonicity).  The stripe
  // is keyed on the BUCKET index -- see the stripe_mu_ declaration -- and
  // the mutex also publishes a fresh node's fields to later probers.
  std::lock_guard<std::mutex> stripe(stripe_mu_[b & (kStripes - 1)]);
  for (std::uint32_t n = buckets_[b]; n != kNil; n = nodes_[n].next) {
    const Node& nd = nodes_[n];
    if (nd.var == var && nd.lo == lo && nd.hi == hi) {
      ++c.unique_hits;
      return n;
    }
  }
  ++c.unique_misses;
  // Hard ceiling: the live count is aggregated across workers, so every
  // thread observes the shared budget.  (Regions and reorder sessions are
  // mutually exclusive, so the session suspension cannot apply here.)
  const std::size_t live =
      std::atomic_ref<std::size_t>(live_nodes_).load(std::memory_order_relaxed);
  if (node_hard_limit_ != 0 && live >= node_hard_limit_) {
    ++c.node_limit_hits;
    throw guard::NodeLimitExceeded(
        "Manager::mk: live-node limit (" +
            std::to_string(node_hard_limit_) + ") exceeded",
        budget_spent());
  }
  if (c.slot_pool.empty()) refill_slot_pool(c);
  const std::uint32_t idx = c.slot_pool.back();
  c.slot_pool.pop_back();
  ref(lo);
  ref(hi);
  Node& nd = nodes_[idx];
  nd.var = var;
  nd.lo = lo;
  nd.hi = hi;
  nd.refs = 0;
  nd.next = buckets_[b];
  buckets_[b] = idx;  // publication point: guarded by the stripe lock
  std::atomic_ref<std::size_t>(live_nodes_)
      .fetch_add(1, std::memory_order_relaxed);
  // Peak tracking is approximate under concurrency (relaxed max); the
  // budget decisions above use the live count, not the peak.
  std::atomic_ref<std::size_t> peak(stats_.peak_nodes);
  std::size_t seen = peak.load(std::memory_order_relaxed);
  while (seen < live + 1 &&
         !peak.compare_exchange_weak(seen, live + 1,
                                     std::memory_order_relaxed)) {
  }
  // Table growth is deferred to parallel_region_end: the bucket count must
  // stay frozen so the bucket -> stripe mapping is stable.
  return idx;
}

void Manager::refill_slot_pool(ThreadCtx& c) {
  bool alloc_failed = false;
  bool capacity_exhausted = false;
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    // Fault site "mk": the Nth fresh node allocation fails, exactly as in
    // the sequential path; the countdown itself is mutex-serialized inside
    // fault_fire.
    if (guard::fault_fire(guard::FaultKind::kAlloc, "mk")) {
      ++c.alloc_failures;
      alloc_failed = true;
    } else {
      std::size_t want = kAllocChunk;
      while (want != 0 && !free_list_.empty()) {
        c.slot_pool.push_back(free_list_.back());
        free_list_.pop_back();
        --want;
      }
      if (c.slot_pool.empty()) {
        // No recycled slots: carve fresh ones from the pre-reserved tail.
        // resize within capacity never reallocates, so worker-held indices
        // stay valid; the new slots are born freed (kFreeVar).
        const std::size_t room = nodes_.capacity() - nodes_.size();
        const std::size_t take = std::min(want, room);
        if (take == 0) {
          capacity_exhausted = true;
        } else {
          const auto base = static_cast<std::uint32_t>(nodes_.size());
          nodes_.resize(nodes_.size() + take,
                        Node{kFreeVar, 0, 0, kNil, 0});
          for (std::size_t i = 0; i < take; ++i) {
            c.slot_pool.push_back(base + static_cast<std::uint32_t>(i));
          }
        }
      }
    }
  }
  // Throw outside the allocation lock: budget_spent() re-takes it.
  if (alloc_failed) {
    throw guard::AllocationFailed("Manager::mk: injected allocation failure",
                                  budget_spent());
  }
  if (capacity_exhausted) {
    throw ParallelCapacityExceeded(
        "Manager::mk: parallel-region node capacity exhausted");
  }
}

void Manager::grow_table() {
  const std::size_t new_size = buckets_.size() * 2;
  std::vector<std::uint32_t> fresh;
  try {
    if (guard::fault_fire(guard::FaultKind::kAlloc, "table")) {
      throw std::bad_alloc{};
    }
    fresh.assign(new_size, kNil);
  } catch (const std::bad_alloc&) {
    // Growth only shortens chains; under allocation pressure keep the
    // current table (longer chains, still correct) and let the node /
    // memory budget machinery handle the real exhaustion.
    ++stats_.alloc_failures;
    return;
  }
  ++stats_.table_growths;
  buckets_.swap(fresh);
  for (std::uint32_t n = 2; n < nodes_.size(); ++n) {
    Node& nd = nodes_[n];
    if (nd.var == kFreeVar || nd.var == kTermVar) continue;
    const std::size_t b = bucket_of(nd.var, nd.lo, nd.hi);
    nd.next = buckets_[b];
    buckets_[b] = n;
  }
}

void Manager::ref(std::uint32_t idx) {
  if (concurrent_.load(std::memory_order_relaxed)) {
    // Saturating atomic increment: CAS so a saturated count stays put.
    std::atomic_ref<std::uint32_t> r(nodes_[idx].refs);
    std::uint32_t cur = r.load(std::memory_order_relaxed);
    while (cur != kMaxRefs &&
           !r.compare_exchange_weak(cur, cur + 1,
                                    std::memory_order_relaxed)) {
    }
    return;
  }
  Node& nd = nodes_[idx];
  if (nd.refs != kMaxRefs) ++nd.refs;
}

void Manager::deref(std::uint32_t idx) {
  if (concurrent_.load(std::memory_order_relaxed)) {
    std::atomic_ref<std::uint32_t> r(nodes_[idx].refs);
    std::uint32_t cur = r.load(std::memory_order_relaxed);
    while (cur != kMaxRefs &&
           !r.compare_exchange_weak(cur, cur - 1,
                                    std::memory_order_relaxed)) {
    }
    return;
  }
  Node& nd = nodes_[idx];
  assert(nd.refs > 0);
  if (nd.refs != kMaxRefs) --nd.refs;
}

void Manager::handle_ref(std::uint32_t idx) {
  ref(idx);
  if (concurrent_.load(std::memory_order_relaxed)) {
    std::atomic_ref<std::size_t>(external_handles_)
        .fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++external_handles_;
}

void Manager::handle_deref(std::uint32_t idx) {
  deref(idx);
  if (concurrent_.load(std::memory_order_relaxed)) {
    std::atomic_ref<std::size_t>(external_handles_)
        .fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  assert(external_handles_ > 0);
  --external_handles_;
}

void Manager::maybe_collect() {
  maybe_auto_reorder();
  if (node_soft_limit_ != 0 && live_nodes_ >= node_soft_limit_ &&
      live_nodes_ > last_soft_gc_live_) {
    // Budget pressure: collect (and flush the computed cache) before the
    // hard limit can fire mid-kernel.  last_soft_gc_live_ keeps an
    // ineffective collection from repeating until the heap grows again.
    // Deliberately independent of disable_auto_gc: a budget asks for
    // graceful degradation even in managers tuned for deterministic GC.
    ++stats_.soft_gc_runs;
    gc();
    last_soft_gc_live_ = live_nodes_;
    return;
  }
  if (!auto_gc_ || live_nodes_ < gc_threshold_) return;
  gc();
  // If the heap is still mostly live, raise the bar so we do not thrash.
  if (live_nodes_ > gc_threshold_ / 2) gc_threshold_ *= 2;
}

void Manager::maybe_auto_reorder() {
  // Growth watermark: live nodes at least doubled since the last reorder
  // (and cleared a small floor, so tiny managers never bother).  Only at
  // top level -- maybe_collect runs before kernels, never inside them.
  if (!auto_reorder_ || in_reorder_ || order_session_ ||
      concurrent_.load(std::memory_order_relaxed) ||
      ctxs_.front()->depth != 0 || num_vars_ < 2) {
    return;
  }
  if (live_nodes_ < std::max(2 * reorder_baseline_, kReorderFloor)) return;
  (void)reorder();
}

void Manager::flush_cache() {
  // Invalidate every per-thread computed cache: any of them may reference
  // nodes the caller is about to free.  Counted as one logical clear.
  for (const auto& c : ctxs_) {
    for (auto& e : c->cache) e.valid = false;
  }
  ++stats_.cache_clears;
}

void Manager::gc() {
  // Stop-the-world: wait for in-flight workers to drain (no-op when no
  // parallel region is open, reentrant when the caller already holds the
  // gate, e.g. gc -> audit).
  const Quiesce gate(*this);
  const std::uint64_t t0 = diag::monotonic_ns();
  // The computed cache may reference dead nodes: drop it wholesale.
  flush_cache();

  std::vector<std::uint32_t> dead;
  for (std::uint32_t n = 2; n < nodes_.size(); ++n) {
    if (nodes_[n].var != kFreeVar && nodes_[n].var != kTermVar &&
        nodes_[n].refs == 0) {
      dead.push_back(n);
    }
  }
  std::size_t reclaimed = 0;
  while (!dead.empty()) {
    const std::uint32_t n = dead.back();
    dead.pop_back();
    Node& nd = nodes_[n];
    if (nd.var == kFreeVar || nd.refs != 0) continue;  // resurrected / done
    unlink_node(n);
    // Release the children; newly-dead ones join the worklist.
    for (const std::uint32_t child : {nd.lo, nd.hi}) {
      deref(child);
      if (nodes_[child].refs == 0 && nodes_[child].var != kTermVar &&
          nodes_[child].var != kFreeVar) {
        dead.push_back(child);
      }
    }
    nd.var = kFreeVar;
    nd.next = kNil;
    free_list_.push_back(n);
    --live_nodes_;
    ++reclaimed;
  }
  ++stats_.gc_runs;
  stats_.gc_reclaimed += reclaimed;
  stats_.live_nodes = live_nodes_;
  const std::uint64_t pause_ns = diag::monotonic_ns() - t0;
  stats_.gc_pause_ns += pause_ns;
  // Attribute the pause to whatever phase triggered the collection.
  diag::Registry::global().timer_add("gc_pause", pause_ns);
  if (audits_enabled()) audit();
}

// ---------------------------------------------------------------------------
// Manager: dynamic variable ordering (primitives; policy lives in src/order)
// ---------------------------------------------------------------------------

std::uint32_t Manager::level_of_var(std::uint32_t v) const {
  if (v >= num_vars_) {
    throw std::invalid_argument("Manager::level_of_var: unknown var");
  }
  return var2level_[v];
}

std::uint32_t Manager::var_at_level(std::uint32_t lvl) const {
  if (lvl >= num_vars_) {
    throw std::invalid_argument("Manager::var_at_level: level out of range");
  }
  return level2var_[lvl];
}

void Manager::group_vars(const std::vector<std::uint32_t>& vars) {
  if (vars.size() < 2) return;  // a singleton group is the default
  for (const std::uint32_t v : vars) {
    if (v >= num_vars_) {
      throw std::invalid_argument("Manager::group_vars: unknown var");
    }
  }
  // The members must already sit at adjacent levels in the given order:
  // the group records "keep this block together", it does not move it.
  for (std::size_t i = 1; i < vars.size(); ++i) {
    if (var2level_[vars[i]] != var2level_[vars[i - 1]] + 1) {
      throw std::invalid_argument(
          "Manager::group_vars: members are not at adjacent levels");
    }
  }
  const std::uint32_t gid = *std::min_element(vars.begin(), vars.end());
  for (const std::uint32_t v : vars) group_of_[v] = gid;
}

std::uint32_t Manager::var_group(std::uint32_t v) const {
  if (v >= num_vars_) {
    throw std::invalid_argument("Manager::var_group: unknown var");
  }
  return group_of_[v];
}

std::vector<std::size_t> Manager::var_node_counts() const {
  std::vector<std::size_t> counts(num_vars_, 0);
  for (std::uint32_t n = 2; n < nodes_.size(); ++n) {
    if (nodes_[n].var < num_vars_) ++counts[nodes_[n].var];
  }
  return counts;
}

void Manager::unlink_node(std::uint32_t n) {
  const Node& nd = nodes_[n];
  const std::size_t b = bucket_of(nd.var, nd.lo, nd.hi);
  std::uint32_t* link = &buckets_[b];
  while (*link != n) link = &nodes_[*link].next;
  *link = nd.next;
}

void Manager::link_node(std::uint32_t n) {
  Node& nd = nodes_[n];
  const std::size_t b = bucket_of(nd.var, nd.lo, nd.hi);
  nd.next = buckets_[b];
  buckets_[b] = n;
}

void Manager::deref_reclaim(std::uint32_t idx) {
  deref(idx);
  std::vector<std::uint32_t> dead;
  if (nodes_[idx].refs == 0 && nodes_[idx].var != kTermVar &&
      nodes_[idx].var != kFreeVar) {
    dead.push_back(idx);
  }
  while (!dead.empty()) {
    const std::uint32_t n = dead.back();
    dead.pop_back();
    Node& nd = nodes_[n];
    if (nd.var == kFreeVar || nd.refs != 0) continue;
    unlink_node(n);
    for (const std::uint32_t child : {nd.lo, nd.hi}) {
      deref(child);
      if (nodes_[child].refs == 0 && nodes_[child].var != kTermVar &&
          nodes_[child].var != kFreeVar) {
        dead.push_back(child);
      }
    }
    nd.var = kFreeVar;
    nd.next = kNil;
    free_list_.push_back(n);
    --live_nodes_;
  }
  stats_.live_nodes = live_nodes_;
}

void Manager::swap_levels(std::uint32_t lvl) {
  if (lvl + 1 >= num_vars_) {
    throw std::invalid_argument("Manager::swap_levels: level out of range");
  }
  if (concurrent_.load(std::memory_order_relaxed)) {
    throw std::logic_error("Manager::swap_levels: parallel region open");
  }
  if (ctxs_.front()->depth != 0) {
    throw std::logic_error("Manager::swap_levels: kernel active");
  }
  // Reordering is a stop-the-world mutation of the shared table.
  const Quiesce gate(*this);
  // Fault site "swap": exhaustion between block moves is how a budget
  // really interrupts sifting; probing before any mutation keeps the
  // injected failure at the same boundary.
  if (guard::fault_fire(guard::FaultKind::kAlloc, "swap")) {
    ++stats_.alloc_failures;
    throw guard::AllocationFailed(
        "Manager::swap_levels: injected allocation failure", budget_spent());
  }
  if (guard::fault_fire(guard::FaultKind::kDeadline, "swap")) {
    ++stats_.budget_aborts;
    throw guard::DeadlineExceeded("Manager::swap_levels: injected deadline",
                                  budget_spent());
  }
  const std::uint32_t x = level2var_[lvl];      // moves down to lvl + 1
  const std::uint32_t y = level2var_[lvl + 1];  // moves up to lvl
  // Only nodes of the upper variable can change shape.  Collect and
  // unlink them all before any rewrite: their triples are about to
  // change, and the mk() calls below must not find a pending node.
  std::vector<std::uint32_t> upper;
  for (std::uint32_t n = 2; n < static_cast<std::uint32_t>(nodes_.size());
       ++n) {
    if (nodes_[n].var == x) upper.push_back(n);
  }
  for (const std::uint32_t n : upper) unlink_node(n);
  // Flip the permutation first so mk() and level() see the new order.
  displaced_vars_ -= static_cast<std::size_t>(var2level_[x] != x) +
                     static_cast<std::size_t>(var2level_[y] != y);
  std::swap(var2level_[x], var2level_[y]);
  level2var_[lvl] = y;
  level2var_[lvl + 1] = x;
  displaced_vars_ += static_cast<std::size_t>(var2level_[x] != x) +
                     static_cast<std::size_t>(var2level_[y] != y);
  // Nodes with no y-child keep their triple (their cofactors do not
  // mention y, so x?hi:lo is unchanged); just relink them.  The rest are
  // rewritten in place -- same node index, so external handles and parent
  // links stay valid -- as y-nodes over fresh x-children.
  std::vector<std::uint32_t> rewrites;
  for (const std::uint32_t n : upper) {
    const Node& nd = nodes_[n];
    if (nodes_[nd.lo].var == y || nodes_[nd.hi].var == y) {
      rewrites.push_back(n);
    } else {
      link_node(n);
    }
  }
  for (const std::uint32_t n : rewrites) {
    const std::uint32_t f0 = nodes_[n].lo;
    const std::uint32_t f1 = nodes_[n].hi;
    // Cofactors w.r.t. y (copied out before mk() can reallocate nodes_).
    const bool lo_on_y = nodes_[f0].var == y;
    const bool hi_on_y = nodes_[f1].var == y;
    const std::uint32_t f00 = lo_on_y ? nodes_[f0].lo : f0;
    const std::uint32_t f01 = lo_on_y ? nodes_[f0].hi : f0;
    const std::uint32_t f10 = hi_on_y ? nodes_[f1].lo : f1;
    const std::uint32_t f11 = hi_on_y ? nodes_[f1].hi : f1;
    // new_lo/new_hi cannot be equal (that would make the original node
    // redundant), so the rewritten node is a genuine y-node.
    const std::uint32_t new_lo = mk(x, f00, f10);
    ref(new_lo);
    const std::uint32_t new_hi = mk(x, f01, f11);
    ref(new_hi);
    Node& nd = nodes_[n];
    nd.var = y;
    nd.lo = new_lo;
    nd.hi = new_hi;
    link_node(n);
    // The old children each lost a parent; reclaim any that died.  The
    // recursion only descends below y's old level, so pending rewrites
    // (all at x's old level, above) are never touched.
    deref_reclaim(f0);
    deref_reclaim(f1);
  }
  ++stats_.reorder_swaps;
  if (order_session_ && !restoring_order_ &&
      live_nodes_ < session_best_nodes_ && groups_contiguous()) {
    // Track the best order this session has seen, so an abort that skips
    // the sifter's own rollback can still restore it.  Orders where a
    // block move has a group temporarily split are never candidates: an
    // abort must not restore a layout the audit would reject.
    session_best_nodes_ = live_nodes_;
    session_best_order_ = level2var_;
  }
  if (!order_session_) {
    // Standalone swap: self-bracket.  Cache entries keyed on recycled
    // slots would be wrong, so flush; surviving entries would actually
    // still be valid (node indices keep their functions), but one flush
    // per explicit swap is cheap and simple.
    flush_cache();
    if (audits_enabled()) audit();
  }
}

void Manager::reorder_session_begin() {
  if (concurrent_.load(std::memory_order_relaxed)) {
    throw std::logic_error(
        "Manager::reorder_session_begin: parallel region open");
  }
  if (ctxs_.front()->depth != 0) {
    throw std::logic_error("Manager::reorder_session_begin: kernel active");
  }
  if (order_session_) {
    throw std::logic_error("Manager::reorder_session_begin: already open");
  }
  // Collect first: swap_levels' eager reclamation relies on refcounts
  // being exact (refs == 0 <=> dead), which only a full GC guarantees.
  gc();
  order_session_ = true;
  session_best_order_ = level2var_;
  session_best_nodes_ = live_nodes_;
}

void Manager::reorder_session_end(bool audit_after) {
  if (!order_session_) return;
  order_session_ = false;
  session_best_order_.clear();
  session_best_nodes_ = 0;
  // Recycled slots may still be cached under stale keys: drop everything.
  flush_cache();
  if (audit_after && audits_enabled()) audit();
}

void Manager::abort_reorder_session() {
  if (!order_session_) return;
  // Exhaustion escaped mid-sift, so the sifter's cooperative rollback
  // never ran: the in-flight block sits at an arbitrary position and the
  // deferred cache flush is still pending.  Restore the best order this
  // session saw, then close the session normally (flush + audit).  Fault
  // probes are suspended: recovering from one injected failure must not
  // trip the next countdown.
  guard::FaultInjector::Suspend no_faults;
  if (!session_best_order_.empty() && session_best_order_ != level2var_) {
    restore_order(session_best_order_);
  }
  reorder_session_end();
}

bool Manager::groups_contiguous() const {
  // Per-group (min level, max level, member count); contiguous iff each
  // span is exactly as long as its membership.  Group ids are variable
  // indices, so flat arrays suffice.
  constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
  std::vector<std::uint32_t> lo(num_vars_, kUnset), hi(num_vars_, 0),
      count(num_vars_, 0);
  for (std::uint32_t v = 0; v < num_vars_; ++v) {
    const std::uint32_t g = group_of_[v];
    const std::uint32_t l = var2level_[v];
    lo[g] = std::min(lo[g], l);
    hi[g] = std::max(hi[g], l);
    ++count[g];
  }
  for (std::uint32_t g = 0; g < num_vars_; ++g) {
    if (count[g] > 1 && hi[g] - lo[g] + 1 != count[g]) return false;
  }
  return true;
}

void Manager::restore_order(const std::vector<std::uint32_t>& target) {
  restoring_order_ = true;
  try {
    // Selection-sort by adjacent swaps: fix levels top-down; bubbling the
    // target variable up never disturbs the already-fixed prefix.
    for (std::uint32_t lvl = 0; lvl + 1 < num_vars_; ++lvl) {
      const std::uint32_t v = target[lvl];
      for (std::uint32_t cur = var2level_[v]; cur > lvl; --cur) {
        swap_levels(cur - 1);
      }
    }
  } catch (...) {
    restoring_order_ = false;
    throw;
  }
  restoring_order_ = false;
}

void Manager::set_auto_reorder(bool on) {
  auto_reorder_ = on;
  if (on) reorder_baseline_ = std::max<std::size_t>(live_nodes_, 2);
}

void Manager::audit() const {
  diag::Registry::global().add_in("bdd", "audit_runs", 1);
  std::string report = audit_check();
  if (!report.empty()) {
    diag::Registry::global().add_in("bdd", "audit_failures", 1);
    throw std::logic_error(report);
  }
}

std::string Manager::audit_check() const {
  // Audits inspect every slot and chain: quiesce first.  Reentrant, so a
  // gc()-triggered audit inside an already-gated section is fine.
  const Quiesce gate(*this);
  std::ostringstream os;
  const auto fail = [&os](const std::string& what) {
    os << "Manager::audit: " << what;
    return os.str();
  };
  const std::size_t n_slots = nodes_.size();
  if (n_slots < 2 || nodes_[kFalse].var != kTermVar ||
      nodes_[kTrue].var != kTermVar) {
    return fail("terminal slots corrupted");
  }

  // -- classify slots, count live nodes, verify per-node shape --------------
  std::size_t live = 0;
  std::size_t freed = 0;
  for (std::uint32_t n = 0; n < n_slots; ++n) {
    const Node& nd = nodes_[n];
    if (nd.var == kFreeVar) {
      ++freed;
      continue;
    }
    ++live;
    if (nd.var == kTermVar) {
      if (n != kFalse && n != kTrue) {
        return fail("terminal marker on interior node " + std::to_string(n));
      }
      continue;
    }
    if (nd.var >= num_vars_) {
      return fail("node " + std::to_string(n) + " has unknown variable " +
                  std::to_string(nd.var));
    }
    if (nd.lo >= n_slots || nd.hi >= n_slots) {
      return fail("node " + std::to_string(n) + " has out-of-bounds child");
    }
    if (nodes_[nd.lo].var == kFreeVar || nodes_[nd.hi].var == kFreeVar) {
      return fail("node " + std::to_string(n) + " references a freed child");
    }
    if (nd.lo == nd.hi) {
      return fail("redundant node " + std::to_string(n) +
                  " (lo == hi survived mk)");
    }
    // Ordering: the children's LEVELS are strictly below under the current
    // variable order (kTermVar is the numeric maximum, so terminals always
    // satisfy this).
    if (level(n) >= level(nd.lo) || level(n) >= level(nd.hi)) {
      return fail("variable order violated at node " + std::to_string(n));
    }
  }
  if (live != live_nodes_) {
    return fail("live_nodes_ (" + std::to_string(live_nodes_) +
                ") disagrees with a fresh count (" + std::to_string(live) +
                ")");
  }

  // -- level maps ------------------------------------------------------------
  // var2level / level2var must be inverse bijections over [0, num_vars),
  // and every reorder group must occupy one contiguous run of levels.
  if (var2level_.size() != num_vars_ || level2var_.size() != num_vars_ ||
      group_of_.size() != num_vars_) {
    return fail("level maps have the wrong size");
  }
  {
    std::size_t displaced = 0;
    for (std::uint32_t v = 0; v < num_vars_; ++v) {
      if (var2level_[v] >= num_vars_) {
        return fail("var2level[" + std::to_string(v) + "] out of range");
      }
      if (level2var_[var2level_[v]] != v) {
        return fail("var2level / level2var are not inverse at variable " +
                    std::to_string(v));
      }
      if (var2level_[v] != v) ++displaced;
    }
    if (displaced != displaced_vars_) {
      return fail("displaced-variable count is stale");
    }
    std::unordered_map<std::uint32_t,
                       std::pair<std::uint32_t, std::uint32_t>>
        span;  // group id -> (min level, max level)
    std::unordered_map<std::uint32_t, std::uint32_t> members;
    for (std::uint32_t v = 0; v < num_vars_; ++v) {
      const std::uint32_t g = group_of_[v];
      const std::uint32_t l = var2level_[v];
      auto [it, fresh] = span.try_emplace(g, std::make_pair(l, l));
      if (!fresh) {
        it->second.first = std::min(it->second.first, l);
        it->second.second = std::max(it->second.second, l);
      }
      ++members[g];
    }
    for (const auto& [g, mm] : span) {
      if (mm.second - mm.first + 1 != members[g]) {
        return fail("reorder group " + std::to_string(g) +
                    " does not occupy contiguous levels");
      }
    }
  }

  // -- free-list consistency ------------------------------------------------
  if (free_list_.size() != freed) {
    return fail("free list size (" + std::to_string(free_list_.size()) +
                ") disagrees with freed slot count (" + std::to_string(freed) +
                ")");
  }
  {
    std::vector<bool> on_free_list(n_slots, false);
    for (const std::uint32_t n : free_list_) {
      if (n >= n_slots || nodes_[n].var != kFreeVar) {
        return fail("free list references live slot " + std::to_string(n));
      }
      if (on_free_list[n]) {
        return fail("free list holds slot " + std::to_string(n) + " twice");
      }
      on_free_list[n] = true;
    }
  }

  // -- unique-table canonicality --------------------------------------------
  // Every live non-terminal must be threaded in exactly its own bucket, and
  // the chains must cover all of them exactly once.
  {
    std::vector<bool> seen(n_slots, false);
    std::size_t chained = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      std::size_t steps = 0;
      for (std::uint32_t n = buckets_[b]; n != kNil; n = nodes_[n].next) {
        if (n >= n_slots || nodes_[n].var == kFreeVar ||
            nodes_[n].var == kTermVar) {
          return fail("bucket " + std::to_string(b) +
                      " chains a non-interior slot " + std::to_string(n));
        }
        if (seen[n]) {
          return fail("node " + std::to_string(n) +
                      " appears twice in the unique table");
        }
        seen[n] = true;
        if (bucket_of(nodes_[n].var, nodes_[n].lo, nodes_[n].hi) != b) {
          return fail("node " + std::to_string(n) + " is in the wrong bucket");
        }
        ++chained;
        if (++steps > live_nodes_) {
          return fail("cycle in bucket chain " + std::to_string(b));
        }
      }
    }
    if (chained != live - 2) {  // all live nodes except the two terminals
      return fail("unique table covers " + std::to_string(chained) +
                  " nodes, expected " + std::to_string(live - 2));
    }
  }
  {
    // No duplicate (var, lo, hi): hash-consing must be airtight.
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
        triples;
    triples.reserve(live);
    for (std::uint32_t n = 2; n < n_slots; ++n) {
      const Node& nd = nodes_[n];
      if (nd.var == kFreeVar || nd.var == kTermVar) continue;
      triples.emplace_back(nd.var, nd.lo, nd.hi);
    }
    std::sort(triples.begin(), triples.end());
    if (std::adjacent_find(triples.begin(), triples.end()) != triples.end()) {
      return fail("duplicate (var, lo, hi) node in the unique table");
    }
  }

  // -- refcount census -------------------------------------------------------
  // Each node's count covers its internal parents; the surplus across all
  // unsaturated nodes is what external Bdd handles contribute, so it cannot
  // exceed the census the handle lifecycle maintains.  (Handles on
  // saturated nodes -- e.g. the terminals -- are invisible here, hence <=.)
  {
    std::vector<std::uint32_t> parents(n_slots, 0);
    for (std::uint32_t n = 2; n < n_slots; ++n) {
      const Node& nd = nodes_[n];
      if (nd.var == kFreeVar || nd.var == kTermVar) continue;
      ++parents[nd.lo];
      ++parents[nd.hi];
    }
    std::size_t surplus = 0;
    for (std::uint32_t n = 0; n < n_slots; ++n) {
      const Node& nd = nodes_[n];
      if (nd.var == kFreeVar || nd.refs == kMaxRefs) continue;
      if (nd.refs < parents[n]) {
        return fail("node " + std::to_string(n) + " has " +
                    std::to_string(nd.refs) + " refs but " +
                    std::to_string(parents[n]) + " internal parents");
      }
      surplus += nd.refs - parents[n];
    }
    if (surplus > external_handles_) {
      return fail("refcount census: " + std::to_string(surplus) +
                  " handle-attributed refs exceed the " +
                  std::to_string(external_handles_) +
                  " live external handles");
    }
  }

  // -- computed-cache validity ----------------------------------------------
  {
    const auto is_live = [&](std::uint32_t idx) {
      return idx < n_slots && nodes_[idx].var != kFreeVar;
    };
    const auto eval_raw = [&](std::uint32_t idx, const std::vector<bool>& a) {
      while (nodes_[idx].var != kTermVar) {
        idx = a[nodes_[idx].var] ? nodes_[idx].hi : nodes_[idx].lo;
      }
      return idx == kTrue;
    };
    // Fixed sample assignments for the semantic revalidation.
    std::vector<std::vector<bool>> samples;
    for (int pattern = 0; pattern < 4; ++pattern) {
      std::vector<bool> a(num_vars_, false);
      for (std::size_t v = 0; v < num_vars_; ++v) {
        switch (pattern) {
          case 0: a[v] = false; break;
          case 1: a[v] = true; break;
          case 2: a[v] = (v % 2) == 1; break;
          default: a[v] = (v % 3) == 0; break;
        }
      }
      samples.push_back(std::move(a));
    }
    std::size_t revalidated = 0;
    constexpr std::size_t kSampleLimit = 64;
    for (const auto& c : ctxs_) {
    for (std::size_t slot = 0; slot < c->cache.size(); ++slot) {
      const CacheEntry& e = c->cache[slot];
      if (!e.valid) continue;
      if (e.op < kOpNot || e.op > kOpCompose) {
        return fail("cache slot " + std::to_string(slot) +
                    " holds unknown op " + std::to_string(e.op));
      }
      // Which operand words are node indices (kOpCompose's h is a variable).
      const bool g_is_node = e.op != kOpNot;
      const bool h_is_node = e.op == kOpIte || e.op == kOpAndExists;
      if (!is_live(e.result) || !is_live(e.f) ||
          (g_is_node && !is_live(e.g)) || (h_is_node && !is_live(e.h))) {
        return fail("cache slot " + std::to_string(slot) +
                    " references a dead or out-of-bounds node");
      }
      if (revalidated < kSampleLimit &&
          (e.op == kOpNot || e.op == kOpAnd || e.op == kOpOr ||
           e.op == kOpXor)) {
        ++revalidated;
        for (const auto& a : samples) {
          const bool fv = eval_raw(e.f, a);
          const bool rv = eval_raw(e.result, a);
          bool expect = false;
          switch (e.op) {
            case kOpNot: expect = !fv; break;
            case kOpAnd: expect = fv && eval_raw(e.g, a); break;
            case kOpOr: expect = fv || eval_raw(e.g, a); break;
            default: expect = fv != eval_raw(e.g, a); break;
          }
          if (rv != expect) {
            return fail("cache slot " + std::to_string(slot) + " (op " +
                        std::to_string(e.op) +
                        ") fails semantic revalidation");
          }
        }
      }
    }
    }
  }

  return "";
}

void Manager::check_mine(const Bdd& b, const char* what) const {
  if (b.mgr_ != this) {
    throw std::invalid_argument(std::string("Manager::") + what +
                                ": operand from a different manager");
  }
}


// ---------------------------------------------------------------------------
// Resource governance
// ---------------------------------------------------------------------------

void Manager::install_budget(const guard::ResourceBudget& budget) {
  budget_ = budget;
  depth_limit_ = budget.max_recursion_depth == 0
                     ? std::numeric_limits<std::size_t>::max()
                     : budget.max_recursion_depth;
  node_hard_limit_ = budget.max_live_nodes;
  node_soft_limit_ = budget.effective_soft_node_limit();
  memory_limit_ = budget.max_memory_bytes;
  budget_epoch_ns_ = diag::monotonic_ns();
  deadline_ns_ =
      budget.deadline_ms == 0
          ? 0
          : budget_epoch_ns_ + budget.deadline_ms * 1'000'000ull;
  margin_ns_ = budget.deadline_ms == 0
                   ? 0
                   : guard::checkpoint_margin_ns(budget.deadline_ms);
  last_soft_gc_live_ = 0;
}

void Manager::clear_budget() {
  // Everything off except the default recursion-depth guard, which also
  // protects unbudgeted runs from stack exhaustion.
  install_budget(guard::ResourceBudget{});
}

std::size_t Manager::memory_bytes_unlocked() const {
  std::size_t bytes = nodes_.capacity() * sizeof(Node) +
                      buckets_.capacity() * sizeof(std::uint32_t) +
                      free_list_.capacity() * sizeof(std::uint32_t);
  for (const auto& c : ctxs_) {
    bytes += c->cache.capacity() * sizeof(CacheEntry) +
             c->slot_pool.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

std::size_t Manager::memory_bytes() const {
  if (concurrent_.load(std::memory_order_relaxed)) {
    // free_list_ mutates under alloc_mu_ during a region; capacities of
    // nodes_/buckets_/ctx caches are frozen, but take the lock anyway so
    // the accounting reads one consistent snapshot.
    std::lock_guard<std::mutex> lock(alloc_mu_);
    return memory_bytes_unlocked();
  }
  return memory_bytes_unlocked();
}

std::uint64_t Manager::elapsed_ms() const {
  return (diag::monotonic_ns() - budget_epoch_ns_) / 1'000'000ull;
}

guard::BudgetSpent Manager::budget_spent() const {
  guard::BudgetSpent spent;
  if (concurrent_.load(std::memory_order_relaxed)) {
    // Aggregated view: live_nodes_ and peak_nodes are maintained with
    // atomic RMWs by every worker, so the totals already cover the whole
    // region; depth is this thread's own recursion depth.
    spent.live_nodes =
        std::atomic_ref<std::size_t>(const_cast<std::size_t&>(live_nodes_))
            .load(std::memory_order_relaxed);
    spent.peak_nodes = std::atomic_ref<std::size_t>(stats_.peak_nodes)
                           .load(std::memory_order_relaxed);
  } else {
    spent.live_nodes = live_nodes_;
    spent.peak_nodes = stats_.peak_nodes;
  }
  spent.memory_bytes = memory_bytes();
  spent.elapsed_ms = elapsed_ms();
  spent.depth = ctx().depth;
  spent.soft_gc_runs = stats_.soft_gc_runs;
  spent.reorder_swaps = stats_.reorder_swaps;
  return spent;
}

void Manager::check_deadline(const char* what) {
  if (diag::monotonic_ns() <= deadline_ns_) return;
  throw guard::DeadlineExceeded(
      std::string(what) + ": wall-clock deadline (" +
          std::to_string(budget_.deadline_ms) + " ms) exceeded",
      budget_spent());
}

void Manager::throw_depth_exceeded(ThreadCtx& ctx) {
  guard::BudgetSpent spent = budget_spent();
  // The throwing Frame never finished constructing, so its destructor
  // will not run: undo its increment here.
  --ctx.depth;
  throw guard::DepthLimitExceeded(
      "bdd kernel: recursion depth limit (" +
          std::to_string(depth_limit_) + ") exceeded",
      spent);
}

void Manager::poll_tick() {
  // Periodic probe from Frame: wall-clock deadline plus the region abort
  // flag, so one worker's failure cancels its peers promptly.
  if (deadline_ns_ != 0) check_deadline("bdd kernel");
  if (region_abort_.load(std::memory_order_relaxed)) throw WorkerCancelled{};
}

void Manager::checkpoint(const char* what) {
  if (deadline_ns_ != 0) check_deadline(what);
  // Fault site = the caller's name ("reachable", "eu", "eg", ...): an
  // injected deadline lands at exactly the cooperative boundary a real
  // one would, so `deadline@reachable:3` interrupts the third
  // reachability iteration deterministically.
  if (guard::fault_fire(guard::FaultKind::kDeadline, what)) {
    ++stats_.budget_aborts;
    throw guard::DeadlineExceeded(
        std::string(what) + ": injected deadline", budget_spent());
  }
  // Deadline-margin checkpointing: when a persist hook is installed and
  // the remaining wall-clock budget first dips below the margin, fire it
  // (once) -- the run keeps going, but its state is now on disk.
  if (deadline_ns_ != 0 && margin_ns_ != 0 &&
      guard::ScopedCheckpointHook::armed() &&
      diag::monotonic_ns() + margin_ns_ > deadline_ns_) {
    guard::ScopedCheckpointHook::fire();
  }
  if (memory_limit_ != 0 && memory_bytes() > memory_limit_) {
    ++stats_.budget_aborts;
    throw guard::MemoryLimitExceeded(
        std::string(what) + ": manager heap exceeds max_memory_bytes (" +
            std::to_string(memory_limit_) + ")",
        budget_spent());
  }
}

void Manager::recover_after_abort() {
  // A reorder session the abort interrupted must be torn down first: the
  // gc() below relies on exact refcounts, and the session's deferred
  // cache flush has not run yet.
  abort_reorder_session();
  // An aborted kernel leaves orphan nodes whose refs exactly cover their
  // in-kernel parents (every mk refs its children), so the refcount
  // census still balances; a collection reclaims the orphans and flushes
  // the computed cache, after which (audits enabled) gc() re-audits --
  // that is the "audit passes immediately after a throw" guarantee.
  gc();
  last_soft_gc_live_ = 0;
}

// ---------------------------------------------------------------------------
// Parallel regions
// ---------------------------------------------------------------------------

Manager::Quiesce::Quiesce(const Manager& m) : m_(m) {
  // Reentrant exclusive gate: gc() -> audit() nests, and both quiesce.
  // Ownership is tracked by thread id so the inner section is a no-op.
  const std::thread::id self = std::this_thread::get_id();
  outer_ = m_.gate_owner_.load(std::memory_order_relaxed) != self;
  if (outer_) {
    m_.gate_mu_.lock();
    m_.gate_owner_.store(self, std::memory_order_relaxed);
  }
}

Manager::Quiesce::~Quiesce() {
  if (outer_) {
    m_.gate_owner_.store(std::thread::id{}, std::memory_order_relaxed);
    m_.gate_mu_.unlock();
  }
}

void Manager::parallel_region_begin(unsigned workers) {
  if (concurrent_.load(std::memory_order_relaxed)) {
    throw std::logic_error(
        "Manager::parallel_region_begin: region already open");
  }
  if (in_reorder_ || order_session_) {
    throw std::logic_error(
        "Manager::parallel_region_begin: reorder session open");
  }
  if (ctxs_.front()->depth != 0) {
    throw std::logic_error("Manager::parallel_region_begin: kernel active");
  }
  if (workers == 0) workers = 1;
  // Freeze the node array's address for the whole region: mk_concurrent
  // only ever resize()s within this reserved capacity, so concurrent
  // readers never see a reallocation.  When the headroom runs out the
  // region aborts with ParallelCapacityExceeded and the caller falls back
  // to the sequential path.
  const std::size_t headroom =
      std::max<std::size_t>(nodes_.size(), std::size_t{1} << 16);
  nodes_.reserve(nodes_.size() + headroom);
  // Worker caches are smaller than the coordinator's: slices are smaller
  // than the operands the sequential engine sees.
  const std::size_t worker_cache = std::max<std::size_t>(
      std::size_t{1} << 12, (std::size_t{1} << cache_log2_) >> 2);
  while (ctxs_.size() < static_cast<std::size_t>(workers) + 1) {
    auto c = std::make_unique<ThreadCtx>();
    c->cache.assign(worker_cache, CacheEntry{});
    ctxs_.push_back(std::move(c));
  }
  // Worker caches persist across regions.  That is safe: the only events
  // that free nodes or change node semantics (gc, reorder) flush every
  // per-thread cache, so any entry still marked valid is still correct.
  region_abort_.store(false, std::memory_order_relaxed);
  concurrent_.store(true, std::memory_order_seq_cst);
}

void Manager::parallel_region_end() {
  if (!concurrent_.load(std::memory_order_relaxed)) {
    throw std::logic_error("Manager::parallel_region_end: no region open");
  }
  // The executor joins / drains its workers before calling this, so all
  // worker writes happen-before this point.
  concurrent_.store(false, std::memory_order_seq_cst);
  // Unused chunk-pool slots go back to the free list; the audit's census
  // (free slots == free-list entries) counts them there.
  for (auto& c : ctxs_) {
    for (const std::uint32_t idx : c->slot_pool) free_list_.push_back(idx);
    c->slot_pool.clear();
  }
  stats_.live_nodes = live_nodes_;
  fold_ctx_stats();
  if (region_abort_.load(std::memory_order_relaxed)) {
    // Some worker threw: reclaim every orphan the cancelled kernels left
    // behind (their refcounts balance, so a plain collection suffices).
    recover_after_abort();
    return;
  }
  // Table growth was deferred while the bucket array was shared: catch up
  // now.  grow_table() keeps the old table on allocation failure, hence
  // the progress check to avoid spinning.
  std::size_t prev = 0;
  while (live_nodes_ > 4 * buckets_.size() && buckets_.size() != prev) {
    prev = buckets_.size();
    grow_table();
  }
}

void Manager::bind_worker(unsigned slot) {
  if (slot == 0 || slot >= ctxs_.size()) {
    throw std::invalid_argument("Manager::bind_worker: bad worker slot");
  }
  t_worker_mgr = this;
  t_worker_ctx = ctxs_[slot].get();
}

void Manager::unbind_worker() {
  t_worker_mgr = nullptr;
  t_worker_ctx = nullptr;
}

template <typename Kernel>
Bdd Manager::run_apply(ApplyOp op, Kernel&& kernel) {
  if (concurrent_.load(std::memory_order_relaxed)) {
    // Worker-side path: no GC, no reorder, no retry -- recovery is the
    // coordinator's job at parallel_region_end.  Any failure raises the
    // region abort flag so sibling workers cancel at their next poll.
    ThreadCtx& c = ctx();
    ++c.apply_calls[static_cast<std::size_t>(op)];
    try {
      if (deadline_ns_ != 0) check_deadline(apply_op_name(op));
      if (guard::fault_fire(guard::FaultKind::kDeadline, "apply")) {
        throw guard::DeadlineExceeded(
            std::string(apply_op_name(op)) + ": injected deadline",
            budget_spent());
      }
      return wrap(kernel());
    } catch (...) {
      region_abort_.store(true, std::memory_order_relaxed);
      throw;
    }
  }
  maybe_collect();
  count_apply(op);
  for (int attempt = 0;; ++attempt) {
    try {
      if (deadline_ns_ != 0) check_deadline(apply_op_name(op));
      // Fault site "apply": the Nth top-level operation times out.
      if (guard::fault_fire(guard::FaultKind::kDeadline, "apply")) {
        throw guard::DeadlineExceeded(
            std::string(apply_op_name(op)) + ": injected deadline",
            budget_spent());
      }
      return wrap(kernel());
    } catch (const guard::DeadlineExceeded&) {
      ++stats_.budget_aborts;
      recover_after_abort();
      throw;  // time does not come back: no retry
    } catch (const guard::DepthLimitExceeded&) {
      ++stats_.budget_aborts;
      recover_after_abort();
      throw;  // the retry would recurse identically: no retry
    } catch (const guard::ResourceExhausted&) {
      // Node-limit or allocation exhaustion: collect (reclaiming the
      // aborted kernel's orphans, flushing the computed cache) and --
      // kernels being pure -- retry once before giving up.
      recover_after_abort();
      if (attempt == 0) {
        ++stats_.exhaust_retries;
        continue;
      }
      ++stats_.budget_aborts;
      throw;
    } catch (const std::bad_alloc&) {
      // An allocation outside mk's hardened path (cache, free list, ...).
      ++stats_.alloc_failures;
      recover_after_abort();
      if (attempt == 0) {
        ++stats_.exhaust_retries;
        continue;
      }
      ++stats_.budget_aborts;
      throw guard::AllocationFailed(
          std::string("Manager::") + apply_op_name(op) +
              ": allocation failed after GC-and-retry",
          budget_spent());
    }
  }
}

void FixpointGuard::tick() {
  ++iterations_;
  mgr_.checkpoint(name_);
  const std::size_t limit = mgr_.budget_.max_fixpoint_iterations;
  if (limit != 0 && iterations_ > limit) {
    ++mgr_.stats_.budget_aborts;
    guard::BudgetSpent spent = mgr_.budget_spent();
    spent.iterations = iterations_;
    throw guard::IterationLimitExceeded(
        std::string(name_) + ": fixpoint iteration limit (" +
            std::to_string(limit) + ") exceeded",
        spent);
  }
}

// ---------------------------------------------------------------------------
// Computed cache
// ---------------------------------------------------------------------------

bool Manager::cache_get(std::uint32_t op, std::uint32_t f, std::uint32_t g,
                        std::uint32_t h, std::uint32_t& out) {
  ThreadCtx& c = ctx();
  ++c.cache_lookups;
  const std::size_t slot =
      (hash3(f, g, h) ^ (op * 0x85EBCA6Bu)) & (c.cache.size() - 1);
  const CacheEntry& e = c.cache[slot];
  if (e.valid && e.op == op && e.f == f && e.g == g && e.h == h) {
    ++c.cache_hits;
    out = e.result;
    return true;
  }
  return false;
}

void Manager::cache_put(std::uint32_t op, std::uint32_t f, std::uint32_t g,
                        std::uint32_t h, std::uint32_t result) {
  ThreadCtx& c = ctx();
  const std::size_t slot =
      (hash3(f, g, h) ^ (op * 0x85EBCA6Bu)) & (c.cache.size() - 1);
  c.cache[slot] = CacheEntry{op, f, g, h, result, true};
}

// ---------------------------------------------------------------------------
// Recursive kernels
// ---------------------------------------------------------------------------

std::uint32_t Manager::not_rec(std::uint32_t f) {
  const Frame frame(*this);
  if (f == kFalse) return kTrue;
  if (f == kTrue) return kFalse;
  std::uint32_t cached;
  if (cache_get(kOpNot, f, 0, 0, cached)) return cached;
  // Immutable fields only -- a whole-Node copy would race on refs/next
  // under a parallel region (value copy because mk may grow nodes_).
  const std::uint32_t nvar = nodes_[f].var;
  const std::uint32_t nlo = nodes_[f].lo;
  const std::uint32_t nhi = nodes_[f].hi;
  const std::uint32_t r = mk(nvar, not_rec(nlo), not_rec(nhi));
  cache_put(kOpNot, f, 0, 0, r);
  return r;
}

std::uint32_t Manager::and_rec(std::uint32_t f, std::uint32_t g) {
  const Frame frame(*this);
  if (f == kFalse || g == kFalse) return kFalse;
  if (f == kTrue) return g;
  if (g == kTrue || f == g) return f;
  if (f > g) std::swap(f, g);  // commutative: normalize for the cache
  std::uint32_t cached;
  if (cache_get(kOpAnd, f, g, 0, cached)) return cached;
  const std::uint32_t top = std::min(level(f), level(g));
  const std::uint32_t tv = level2var_[top];  // variable at the top level
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const std::uint32_t f0 = nf.var == tv ? nf.lo : f;
  const std::uint32_t f1 = nf.var == tv ? nf.hi : f;
  const std::uint32_t g0 = ng.var == tv ? ng.lo : g;
  const std::uint32_t g1 = ng.var == tv ? ng.hi : g;
  const std::uint32_t r = mk(tv, and_rec(f0, g0), and_rec(f1, g1));
  cache_put(kOpAnd, f, g, 0, r);
  return r;
}

std::uint32_t Manager::or_rec(std::uint32_t f, std::uint32_t g) {
  const Frame frame(*this);
  if (f == kTrue || g == kTrue) return kTrue;
  if (f == kFalse) return g;
  if (g == kFalse || f == g) return f;
  if (f > g) std::swap(f, g);
  std::uint32_t cached;
  if (cache_get(kOpOr, f, g, 0, cached)) return cached;
  const std::uint32_t top = std::min(level(f), level(g));
  const std::uint32_t tv = level2var_[top];
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const std::uint32_t f0 = nf.var == tv ? nf.lo : f;
  const std::uint32_t f1 = nf.var == tv ? nf.hi : f;
  const std::uint32_t g0 = ng.var == tv ? ng.lo : g;
  const std::uint32_t g1 = ng.var == tv ? ng.hi : g;
  const std::uint32_t r = mk(tv, or_rec(f0, g0), or_rec(f1, g1));
  cache_put(kOpOr, f, g, 0, r);
  return r;
}

std::uint32_t Manager::xor_rec(std::uint32_t f, std::uint32_t g) {
  const Frame frame(*this);
  if (f == g) return kFalse;
  if (f == kFalse) return g;
  if (g == kFalse) return f;
  if (f == kTrue) return not_rec(g);
  if (g == kTrue) return not_rec(f);
  if (f > g) std::swap(f, g);
  std::uint32_t cached;
  if (cache_get(kOpXor, f, g, 0, cached)) return cached;
  const std::uint32_t top = std::min(level(f), level(g));
  const std::uint32_t tv = level2var_[top];
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const std::uint32_t f0 = nf.var == tv ? nf.lo : f;
  const std::uint32_t f1 = nf.var == tv ? nf.hi : f;
  const std::uint32_t g0 = ng.var == tv ? ng.lo : g;
  const std::uint32_t g1 = ng.var == tv ? ng.hi : g;
  const std::uint32_t r = mk(tv, xor_rec(f0, g0), xor_rec(f1, g1));
  cache_put(kOpXor, f, g, 0, r);
  return r;
}

std::uint32_t Manager::ite_rec(std::uint32_t f, std::uint32_t g,
                               std::uint32_t h) {
  const Frame frame(*this);
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return not_rec(f);
  std::uint32_t cached;
  if (cache_get(kOpIte, f, g, h, cached)) return cached;
  const std::uint32_t top =
      std::min(level(f), std::min(level(g), level(h)));
  const std::uint32_t tv = level2var_[top];
  auto cof = [&](std::uint32_t n, bool hi) {
    const Node& nd = nodes_[n];
    if (nd.var != tv) return n;
    return hi ? nd.hi : nd.lo;
  };
  const std::uint32_t r1 = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  const std::uint32_t r0 =
      ite_rec(cof(f, false), cof(g, false), cof(h, false));
  const std::uint32_t r = mk(tv, r0, r1);
  cache_put(kOpIte, f, g, h, r);
  return r;
}

std::uint32_t Manager::exists_rec(std::uint32_t f, std::uint32_t cube) {
  const Frame frame(*this);
  if (f == kFalse || f == kTrue) return f;
  // Skip cube variables above f's top variable: f does not depend on them.
  while (cube != kTrue && level(cube) < level(f)) cube = nodes_[cube].hi;
  if (cube == kTrue) return f;
  std::uint32_t cached;
  if (cache_get(kOpExists, f, cube, 0, cached)) return cached;
  const Node& nf = nodes_[f];
  std::uint32_t r;
  if (level(f) == level(cube)) {
    const std::uint32_t rest = nodes_[cube].hi;
    const std::uint32_t r0 = exists_rec(nf.lo, rest);
    // Early termination: once one branch is true the disjunction is true.
    r = (r0 == kTrue) ? kTrue : or_rec(r0, exists_rec(nf.hi, rest));
  } else {
    r = mk(nf.var, exists_rec(nf.lo, cube), exists_rec(nf.hi, cube));
  }
  cache_put(kOpExists, f, cube, 0, r);
  return r;
}

std::uint32_t Manager::and_exists_rec(std::uint32_t f, std::uint32_t g,
                                      std::uint32_t cube) {
  const Frame frame(*this);
  if (f == kFalse || g == kFalse) return kFalse;
  if (cube == kTrue) return and_rec(f, g);
  if (f == kTrue) return exists_rec(g, cube);
  if (g == kTrue) return exists_rec(f, cube);
  if (f == g) return exists_rec(f, cube);
  if (f > g) std::swap(f, g);
  const std::uint32_t top = std::min(level(f), level(g));
  // Quantified variables above both operands vanish.
  while (cube != kTrue && level(cube) < top) cube = nodes_[cube].hi;
  if (cube == kTrue) return and_rec(f, g);
  std::uint32_t cached;
  if (cache_get(kOpAndExists, f, g, cube, cached)) return cached;
  const std::uint32_t tv = level2var_[top];
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const std::uint32_t f0 = nf.var == tv ? nf.lo : f;
  const std::uint32_t f1 = nf.var == tv ? nf.hi : f;
  const std::uint32_t g0 = ng.var == tv ? ng.lo : g;
  const std::uint32_t g1 = ng.var == tv ? ng.hi : g;
  std::uint32_t r;
  if (level(cube) == top) {
    const std::uint32_t rest = nodes_[cube].hi;
    const std::uint32_t r0 = and_exists_rec(f0, g0, rest);
    r = (r0 == kTrue) ? kTrue : or_rec(r0, and_exists_rec(f1, g1, rest));
  } else {
    r = mk(tv, and_exists_rec(f0, g0, cube), and_exists_rec(f1, g1, cube));
  }
  cache_put(kOpAndExists, f, g, cube, r);
  return r;
}

std::uint32_t Manager::constrain_rec(std::uint32_t f, std::uint32_t c) {
  const Frame frame(*this);
  if (c == kTrue || f == kFalse || f == kTrue) return f;
  if (f == c) return kTrue;
  std::uint32_t cached;
  if (cache_get(kOpConstrain, f, c, 0, cached)) return cached;
  const std::uint32_t top = std::min(level(f), level(c));
  const std::uint32_t tv = level2var_[top];
  const Node& nf = nodes_[f];
  const Node& nc = nodes_[c];
  const std::uint32_t f0 = nf.var == tv ? nf.lo : f;
  const std::uint32_t f1 = nf.var == tv ? nf.hi : f;
  const std::uint32_t c0 = nc.var == tv ? nc.lo : c;
  const std::uint32_t c1 = nc.var == tv ? nc.hi : c;
  std::uint32_t r;
  if (c0 == kFalse) {
    r = constrain_rec(f1, c1);
  } else if (c1 == kFalse) {
    r = constrain_rec(f0, c0);
  } else {
    r = mk(tv, constrain_rec(f0, c0), constrain_rec(f1, c1));
  }
  cache_put(kOpConstrain, f, c, 0, r);
  return r;
}

std::uint32_t Manager::restrict_min_rec(std::uint32_t f, std::uint32_t c) {
  const Frame frame(*this);
  if (c == kTrue || f == kFalse || f == kTrue) return f;
  if (f == c) return kTrue;
  std::uint32_t cached;
  if (cache_get(kOpRestrictMin, f, c, 0, cached)) return cached;
  std::uint32_t r;
  if (level(c) < level(f)) {
    // The care set branches on a variable f ignores: drop it instead of
    // splitting f (this keeps the support within f's).
    r = restrict_min_rec(f, or_rec(nodes_[c].lo, nodes_[c].hi));
  } else {
    const Node& nf = nodes_[f];
    const Node& nc = nodes_[c];
    // f's variable is topmost; c branches on it iff it sits at f's level.
    const std::uint32_t fv = nf.var;
    const std::uint32_t c0 = nc.var == fv ? nc.lo : c;
    const std::uint32_t c1 = nc.var == fv ? nc.hi : c;
    if (c0 == kFalse) {
      r = restrict_min_rec(nf.hi, c1);
    } else if (c1 == kFalse) {
      r = restrict_min_rec(nf.lo, c0);
    } else {
      r = mk(fv, restrict_min_rec(nf.lo, c0), restrict_min_rec(nf.hi, c1));
    }
  }
  cache_put(kOpRestrictMin, f, c, 0, r);
  return r;
}

std::uint32_t Manager::compose_rec(std::uint32_t f, std::uint32_t var,
                                   std::uint32_t g) {
  const Frame frame(*this);
  if (level(f) == kTermVar) return f;
  // Below var's level f cannot depend on var (a var outside the manager
  // has no level; recursion then just rebuilds f).
  if (var < num_vars_ && level(f) > var2level_[var]) return f;
  std::uint32_t cached;
  if (cache_get(kOpCompose, f, g, var, cached)) return cached;
  // Immutable fields only -- a whole-Node copy would race on refs/next
  // under a parallel region (value copy because mk may grow nodes_).
  const std::uint32_t nfvar = nodes_[f].var;
  const std::uint32_t nflo = nodes_[f].lo;
  const std::uint32_t nfhi = nodes_[f].hi;
  std::uint32_t r;
  if (nfvar == var) {
    r = ite_rec(g, nfhi, nflo);
  } else {
    // Rebuild via ite on the top variable: the composed children may
    // depend on variables above nfvar, so a plain mk could be unordered.
    const std::uint32_t v = mk(nfvar, kFalse, kTrue);
    r = ite_rec(v, compose_rec(nfhi, var, g), compose_rec(nflo, var, g));
  }
  cache_put(kOpCompose, f, g, var, r);
  return r;
}

std::uint32_t Manager::restrict_rec(
    std::uint32_t f, std::uint32_t var, bool value,
    std::unordered_map<std::uint32_t, std::uint32_t>& memo) {
  const Frame frame(*this);
  if (level(f) == kTermVar) return f;
  if (var < num_vars_ && level(f) > var2level_[var]) return f;
  if (const auto it = memo.find(f); it != memo.end()) return it->second;
  // Immutable fields only -- a whole-Node copy would race on refs/next
  // under a parallel region (value copy because mk may grow nodes_).
  const std::uint32_t nvar = nodes_[f].var;
  const std::uint32_t nlo = nodes_[f].lo;
  const std::uint32_t nhi = nodes_[f].hi;
  std::uint32_t r;
  if (nvar == var) {
    r = value ? nhi : nlo;
  } else {
    r = mk(nvar, restrict_rec(nlo, var, value, memo),
           restrict_rec(nhi, var, value, memo));
  }
  memo[f] = r;
  return r;
}

// ---------------------------------------------------------------------------
// Manager: public composite operations
// ---------------------------------------------------------------------------

Bdd Manager::cube(const std::vector<std::uint32_t>& vars) {
  maybe_collect();
  // Build bottom-up (deepest level first) so every mk is ordered.
  std::vector<std::uint32_t> sorted = vars;
  for (const std::uint32_t v : sorted) {
    if (v >= num_vars_) {
      throw std::invalid_argument("Manager::cube: unknown var");
    }
  }
  std::sort(sorted.begin(), sorted.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return var2level_[a] < var2level_[b];
            });
  std::uint32_t acc = kTrue;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    acc = mk(*it, kFalse, acc);
  }
  return wrap(acc);
}

Bdd Manager::minterm(const std::vector<std::uint32_t>& vars,
                     const std::vector<bool>& values) {
  if (vars.size() != values.size()) {
    throw std::invalid_argument("Manager::minterm: size mismatch");
  }
  maybe_collect();
  std::vector<std::pair<std::uint32_t, bool>> lits;
  lits.reserve(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] >= num_vars_) {
      throw std::invalid_argument("Manager::minterm: unknown var");
    }
    lits.emplace_back(vars[i], values[i]);
  }
  std::sort(lits.begin(), lits.end(),
            [&](const std::pair<std::uint32_t, bool>& a,
                const std::pair<std::uint32_t, bool>& b) {
              return var2level_[a.first] < var2level_[b.first];
            });
  std::uint32_t acc = kTrue;
  for (auto it = lits.rbegin(); it != lits.rend(); ++it) {
    acc = it->second ? mk(it->first, kFalse, acc) : mk(it->first, acc, kFalse);
  }
  return wrap(acc);
}

Bdd Manager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  check_mine(f, "ite");
  check_mine(g, "ite");
  check_mine(h, "ite");
  return run_apply(ApplyOp::kIte,
                   [&] { return ite_rec(f.idx_, g.idx_, h.idx_); });
}

Bdd Manager::and_exists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  check_mine(f, "and_exists");
  check_mine(g, "and_exists");
  check_mine(cube, "and_exists");
  return run_apply(ApplyOp::kAndExists, [&] {
    return and_exists_rec(f.idx_, g.idx_, cube.idx_);
  });
}

Bdd Manager::rename(const Bdd& f, const std::vector<std::uint32_t>& map) {
  check_mine(f, "rename");
  // Verify the map is order-preserving and injective on f's support; a
  // violation would silently produce a mis-ordered (non-canonical) DAG.
  std::vector<std::uint32_t> sup = f.support();
  for (const std::uint32_t v : sup) {
    if (v >= map.size()) {
      throw std::invalid_argument("Manager::rename: map too short");
    }
    if (map[v] >= num_vars_) {
      throw std::invalid_argument("Manager::rename: target var unknown");
    }
  }
  // Order preservation is about LEVELS: walking the support from the top
  // of the current order down, the targets' levels must strictly descend
  // with it (which also gives injectivity on the support).
  std::sort(sup.begin(), sup.end(), [&](std::uint32_t a, std::uint32_t b) {
    return var2level_[a] < var2level_[b];
  });
  for (std::size_t i = 1; i < sup.size(); ++i) {
    if (var2level_[map[sup[i - 1]]] >= var2level_[map[sup[i]]]) {
      throw std::invalid_argument(
          "Manager::rename: map does not preserve variable order");
    }
  }
  return run_apply(ApplyOp::kRename, [&] {
    std::unordered_map<std::uint32_t, std::uint32_t> memo;
    auto rec = [&](auto&& self, std::uint32_t n) -> std::uint32_t {
      const Frame frame(*this);
      if (level(n) == kTermVar) return n;
      if (const auto it = memo.find(n); it != memo.end()) return it->second;
      // Copy only the immutable fields: a whole-Node copy would read the
      // refs word (CASed by sibling workers) and the next link (rewritten
      // under stripe locks) -- a data race under a parallel region.  Copy
      // by value, not reference: mk below may grow nodes_ sequentially.
      const std::uint32_t nvar = nodes_[n].var;
      const std::uint32_t nlo = nodes_[n].lo;
      const std::uint32_t nhi = nodes_[n].hi;
      const std::uint32_t r = mk(map[nvar], self(self, nlo), self(self, nhi));
      memo.emplace(n, r);
      return r;
    };
    return rec(rec, f.idx_);
  });
}

Bdd Manager::pick_one_minterm(const Bdd& f,
                              const std::vector<std::uint32_t>& vars) {
  check_mine(f, "pick_one_minterm");
  const std::vector<bool> values = pick_one_assignment(f, vars);
  return minterm(vars, values);
}

std::vector<bool> Manager::pick_one_assignment(
    const Bdd& f, const std::vector<std::uint32_t>& vars) {
  check_mine(f, "pick_one_assignment");
  if (f.is_false() || f.is_null()) {
    throw std::invalid_argument("pick_one_assignment: unsatisfiable function");
  }
  for (std::size_t i = 1; i < vars.size(); ++i) {
    if (vars[i - 1] >= vars[i]) {
      throw std::invalid_argument("pick_one_assignment: vars not ascending");
    }
  }
  std::vector<bool> values(vars.size(), false);
  // The choice is defined ORDER-INDEPENDENTLY: the lexicographically
  // smallest satisfying assignment w.r.t. the variable INDICES in `vars`,
  // preferring false.  Witness traces therefore come out bit-identical no
  // matter what order reordering has left the manager in.
  if (identity_order()) {
    // Fast path: under the identity order a single top-down walk computes
    // exactly that assignment (each variable is met in index order and the
    // low branch is preferred).
    std::uint32_t n = f.idx_;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (level(n) == kTermVar || nodes_[n].var != vars[i]) {
        // f does not branch on vars[i] here: any value works; pick false.
        if (level(n) != kTermVar && nodes_[n].var < vars[i]) {
          throw std::invalid_argument(
              "pick_one_assignment: vars does not cover the support");
        }
        continue;
      }
      const Node& nd = nodes_[n];
      if (nd.lo != kFalse) {
        values[i] = false;
        n = nd.lo;
      } else {
        values[i] = true;
        n = nd.hi;
      }
    }
    if (n != kTrue) {
      throw std::invalid_argument(
          "pick_one_assignment: vars does not cover the support");
    }
    return values;
  }
  // Permuted order: greedy cofactoring in index order.  values[i] = false
  // iff the function restricted by the choices so far stays satisfiable
  // with vars[i] = false -- the same greedy rule the walk implements.
  std::uint32_t n = f.idx_;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (level(n) == kTermVar) break;  // remaining vars are free: all false
    std::unordered_map<std::uint32_t, std::uint32_t> memo;
    const std::uint32_t f0 = restrict_rec(n, vars[i], false, memo);
    if (f0 != kFalse) {
      values[i] = false;
      n = f0;
    } else {
      values[i] = true;
      memo.clear();
      n = restrict_rec(n, vars[i], true, memo);
    }
  }
  if (n != kTrue) {
    throw std::invalid_argument(
        "pick_one_assignment: vars does not cover the support");
  }
  return values;
}

void Manager::for_each_assignment(
    const Bdd& f, const std::vector<std::uint32_t>& vars,
    const std::function<void(const std::vector<bool>&)>& visit) {
  check_mine(f, "for_each_assignment");
  for (std::size_t i = 1; i < vars.size(); ++i) {
    if (vars[i - 1] >= vars[i]) {
      throw std::invalid_argument("for_each_assignment: vars not ascending");
    }
  }
  if (f.is_false()) return;
  // The walk must follow the BDD's LEVEL order, but the enumeration is
  // promised in lexicographic order of `vars` (by variable INDEX), which a
  // reorder must not change.  So: visit `vars` sorted by current level,
  // collect the rows, sort them, then emit.  Under the identity order the
  // rows are generated lexicographically already and the sort is a no-op.
  const std::size_t k = vars.size();
  // Variables outside the manager (tolerated, as before: f cannot branch
  // on them) sort below every real level.
  const auto lvl_of_var = [&](std::uint32_t v) {
    return v < num_vars_ ? var2level_[v] : kTermVar;
  };
  std::vector<std::size_t> pos(k);  // visit order: positions by level
  for (std::size_t i = 0; i < k; ++i) pos[i] = i;
  std::sort(pos.begin(), pos.end(), [&](std::size_t a, std::size_t b) {
    return lvl_of_var(vars[a]) < lvl_of_var(vars[b]);
  });
  std::vector<std::vector<bool>> rows;
  std::vector<bool> values(k, false);
  // Depth = position in the level-sorted visit order; branch on the BDD
  // only when its top variable matches, otherwise both values lead to the
  // same subfunction.
  auto rec = [&](auto&& self, std::size_t depth, std::uint32_t n) -> void {
    if (depth == k) {
      if (n != kTrue) {
        throw std::invalid_argument(
            "for_each_assignment: vars does not cover the support");
      }
      rows.push_back(values);
      return;
    }
    const std::uint32_t v = vars[pos[depth]];
    const std::uint32_t lvl = level(n);
    if (lvl != kTermVar && lvl < lvl_of_var(v)) {
      throw std::invalid_argument(
          "for_each_assignment: vars does not cover the support");
    }
    if (lvl == kTermVar || nodes_[n].var != v) {
      for (const bool b : {false, true}) {
        values[pos[depth]] = b;
        self(self, depth + 1, n);
      }
      return;
    }
    const Node& nd = nodes_[n];
    if (nd.lo != kFalse) {
      values[pos[depth]] = false;
      self(self, depth + 1, nd.lo);
    }
    if (nd.hi != kFalse) {
      values[pos[depth]] = true;
      self(self, depth + 1, nd.hi);
    }
  };
  rec(rec, 0, f.raw_index());
  std::sort(rows.begin(), rows.end());
  for (const auto& row : rows) visit(row);
}

std::string dot_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        break;  // a bare CR only corrupts the label; drop it
      default:
        out += c;
    }
  }
  return out;
}

void Manager::dump_dot(std::ostream& os, const std::vector<Bdd>& roots,
                       const std::vector<std::string>& names) const {
  os << "digraph bdd {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=circle];\n"
     << "  n0 [shape=box,label=\"0\"];\n"
     << "  n1 [shape=box,label=\"1\"];\n";
  std::unordered_set<std::uint32_t> seen{kFalse, kTrue};
  std::vector<std::uint32_t> stack;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    os << "  r" << i << " [shape=plaintext,label=\"f" << i << "\"];\n"
       << "  r" << i << " -> n" << roots[i].idx_ << ";\n";
    stack.push_back(roots[i].idx_);
  }
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    const Node& nd = nodes_[n];
    std::string label;
    if (nd.var < names.size() && !names[nd.var].empty()) {
      label = names[nd.var];
    } else {
      label = 'v';
      label += std::to_string(nd.var);
    }
    // Post-reorder dumps are unreadable without positions: annotate every
    // node with the level its variable currently occupies.
    if (nd.var < num_vars_) {
      label += " @";
      label += std::to_string(var2level_[nd.var]);
    }
    os << "  n" << n << " [label=\"" << dot_escape(label) << "\"];\n"
       << "  n" << n << " -> n" << nd.lo << " [style=dashed];\n"
       << "  n" << n << " -> n" << nd.hi << ";\n";
    stack.push_back(nd.lo);
    stack.push_back(nd.hi);
  }
  os << "}\n";
}

}  // namespace symcex::bdd
