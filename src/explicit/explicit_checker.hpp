// SymCeX -- explicit-state CTL model checker (the EMC-style baseline).
//
// Implements the classical linear-time labelling algorithm of [5, 6] over
// an enumerated Graph, including fairness via strongly connected
// components: EG f under fairness holds at s iff, within the subgraph of
// f-states, s can reach a nontrivial SCC intersecting every fairness set.
// Serves as an oracle for the symbolic checker and as the baseline in the
// explicit-vs-symbolic benchmarks.

#pragma once

#include <string>
#include <vector>

#include "ctl/formula.hpp"
#include "explicit/explicit_graph.hpp"

namespace symcex::enumerative {

/// Bit-set over states of one Graph.
using StateSet = std::vector<bool>;

class Checker {
 public:
  explicit Checker(const Graph& graph);

  /// The set of states satisfying a CTL formula (fairness-aware).
  [[nodiscard]] StateSet states(const ctl::Formula::Ptr& f);
  /// Does every initial state satisfy f?
  [[nodiscard]] bool holds(const ctl::Formula::Ptr& f);
  [[nodiscard]] bool holds(const std::string& formula_text);

  // -- primitives (fairness-aware like the symbolic ones) -------------------
  [[nodiscard]] StateSet ex(const StateSet& f) const;
  [[nodiscard]] StateSet eu(const StateSet& f, const StateSet& g) const;
  [[nodiscard]] StateSet eg(const StateSet& f) const;
  /// States at the start of some fair (infinite) path.  Cached.
  [[nodiscard]] const StateSet& fair_states() const;

  // -- raw variants (ignore fairness; plain CTL over infinite paths) --------
  [[nodiscard]] StateSet ex_raw(const StateSet& f) const;
  [[nodiscard]] StateSet eu_raw(const StateSet& f, const StateSet& g) const;
  [[nodiscard]] StateSet eg_raw(const StateSet& f) const;

  /// SCC decomposition of the subgraph induced by `f` (Tarjan, iterative).
  /// Returns component id per state (-1 outside f) and the component count.
  [[nodiscard]] std::pair<std::vector<int>, int> scc_of(const StateSet& f) const;

  [[nodiscard]] const Graph& graph() const { return graph_; }

 private:
  [[nodiscard]] StateSet resolve_atom(const std::string& name) const;
  [[nodiscard]] StateSet eval_enf(const ctl::Formula::Ptr& f);
  /// Backward closure: states reaching `target` via f-states
  /// (f holding along the way, target included).
  [[nodiscard]] StateSet backward_reach(const StateSet& f,
                                        const StateSet& target) const;

  const Graph& graph_;
  std::vector<std::vector<StateId>> pred_;
  mutable StateSet fair_;
  mutable bool have_fair_ = false;
};

/// An explicit finite witness: prefix + cycle of StateIds.
struct FiniteWitness {
  std::vector<StateId> prefix;
  std::vector<StateId> cycle;
  [[nodiscard]] std::size_t length() const {
    return prefix.size() + cycle.size();
  }
};

/// Explicit-graph witness generation (the EMC-style counterpart of the
/// paper's Section 6 machinery): shortest f-path to a g-state, and fair
/// EG lassos built from a fair SCC.  Free functions over a Graph.
///
/// eu_witness: shortest path from `start` to a g-state through f-states
/// (including start); nullopt if none exists.
[[nodiscard]] std::optional<FiniteWitness> eu_witness(const Graph& graph,
                                                      StateId start,
                                                      const StateSet& f,
                                                      const StateSet& g);

/// eg_witness: a lasso from `start` whose states all satisfy f and whose
/// cycle visits every fairness set of the graph; nullopt if start does
/// not satisfy EG f under fairness.
[[nodiscard]] std::optional<FiniteWitness> eg_witness(const Graph& graph,
                                                      StateId start,
                                                      const StateSet& f);

/// Exact minimal finite witness for "EG f under the graph's fairness
/// constraints" starting at `start` (Theorem 1 of the paper: NP-complete;
/// this search is exponential in the number of fairness constraints but
/// polynomial in the number of states).  All witness states satisfy `f`,
/// the cycle visits every fairness set, and |prefix| + |cycle| is minimal.
/// Returns std::nullopt if no finite witness exists from `start`.
[[nodiscard]] std::optional<FiniteWitness> minimal_finite_witness(
    const Graph& graph, StateId start, const StateSet& f);

}  // namespace symcex::enumerative
