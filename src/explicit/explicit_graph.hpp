// SymCeX -- explicit state graphs.
//
// The baseline representation the paper's introduction contrasts with:
// an explicitly enumerated state-transition graph in the style of the EMC
// model checker [5, 6].  Used three ways:
//
//   * as the comparison point in the explicit-vs-symbolic benchmarks
//     (the arbiter verification that "failed because the number of states
//     was too large" for the explicit checker);
//   * as an oracle in tests (explicit verdicts cross-check symbolic ones);
//   * as the substrate for the exact minimal-finite-witness search of
//     Theorem 1, which is inherently an explicit-graph computation.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "ts/transition_system.hpp"

namespace symcex::enumerative {

using StateId = std::uint32_t;

/// An explicit labeled state-transition graph with fairness sets.
struct Graph {
  std::vector<std::vector<StateId>> succ;
  std::vector<StateId> init;
  std::unordered_map<std::string, std::vector<bool>> labels;
  std::vector<std::vector<bool>> fairness;

  [[nodiscard]] std::size_t num_states() const { return succ.size(); }
  StateId add_state() {
    succ.emplace_back();
    return static_cast<StateId>(succ.size() - 1);
  }
  void add_edge(StateId from, StateId to) { succ[from].push_back(to); }
  /// Predecessor lists (computed on demand by algorithms that need them).
  [[nodiscard]] std::vector<std::vector<StateId>> predecessors() const;
};

/// Result of enumerating a symbolic system: the graph over its reachable
/// states plus the concrete state (full minterm) behind each StateId.
struct Enumerated {
  Graph graph;
  std::vector<bdd::Bdd> concrete;
};

/// Breadth-first enumeration of the reachable fragment of `ts`, carrying
/// over every label and fairness constraint.  Throws std::length_error if
/// more than `max_states` states are reachable -- which is precisely the
/// failure mode the paper reports for the explicit-state attempt on the
/// arbiter.
[[nodiscard]] Enumerated enumerate(const ts::TransitionSystem& ts,
                                   std::size_t max_states);

}  // namespace symcex::enumerative
