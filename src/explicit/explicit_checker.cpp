#include "explicit/explicit_checker.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <stdexcept>

namespace symcex::enumerative {

namespace {

StateSet make_all(std::size_t n, bool value) { return StateSet(n, value); }

}  // namespace

Checker::Checker(const Graph& graph)
    : graph_(graph), pred_(graph.predecessors()) {}

StateSet Checker::resolve_atom(const std::string& name) const {
  const auto it = graph_.labels.find(name);
  if (it == graph_.labels.end()) {
    throw std::invalid_argument("explicit Checker: unknown atom '" + name +
                                "'");
  }
  return it->second;
}

StateSet Checker::states(const ctl::Formula::Ptr& f) {
  return eval_enf(ctl::to_existential_normal_form(f));
}

bool Checker::holds(const ctl::Formula::Ptr& f) {
  const StateSet sat = states(f);
  return std::all_of(graph_.init.begin(), graph_.init.end(),
                     [&](StateId s) { return sat[s]; });
}

bool Checker::holds(const std::string& formula_text) {
  return holds(ctl::parse(formula_text));
}

StateSet Checker::eval_enf(const ctl::Formula::Ptr& f) {
  using ctl::Kind;
  const std::size_t n = graph_.num_states();
  switch (f->kind()) {
    case Kind::kTrue:
      return make_all(n, true);
    case Kind::kFalse:
      return make_all(n, false);
    case Kind::kAtom:
      return resolve_atom(f->name());
    case Kind::kNot: {
      StateSet a = eval_enf(f->lhs());
      a.flip();
      return a;
    }
    case Kind::kAnd: {
      StateSet a = eval_enf(f->lhs());
      const StateSet b = eval_enf(f->rhs());
      for (std::size_t i = 0; i < n; ++i) a[i] = a[i] && b[i];
      return a;
    }
    case Kind::kOr: {
      StateSet a = eval_enf(f->lhs());
      const StateSet b = eval_enf(f->rhs());
      for (std::size_t i = 0; i < n; ++i) a[i] = a[i] || b[i];
      return a;
    }
    case Kind::kXor: {
      StateSet a = eval_enf(f->lhs());
      const StateSet b = eval_enf(f->rhs());
      for (std::size_t i = 0; i < n; ++i) a[i] = a[i] != b[i];
      return a;
    }
    case Kind::kEX:
      return ex(eval_enf(f->lhs()));
    case Kind::kEU:
      return eu(eval_enf(f->lhs()), eval_enf(f->rhs()));
    case Kind::kEG:
      return eg(eval_enf(f->lhs()));
    default:
      throw std::logic_error("explicit Checker: formula not in ENF");
  }
}

StateSet Checker::ex_raw(const StateSet& f) const {
  StateSet out = make_all(graph_.num_states(), false);
  for (StateId u = 0; u < graph_.num_states(); ++u) {
    for (const StateId v : graph_.succ[u]) {
      if (f[v]) {
        out[u] = true;
        break;
      }
    }
  }
  return out;
}

StateSet Checker::backward_reach(const StateSet& f,
                                 const StateSet& target) const {
  StateSet out = target;
  std::deque<StateId> work;
  for (StateId v = 0; v < graph_.num_states(); ++v) {
    if (out[v]) work.push_back(v);
  }
  while (!work.empty()) {
    const StateId v = work.front();
    work.pop_front();
    for (const StateId u : pred_[v]) {
      if (!out[u] && f[u]) {
        out[u] = true;
        work.push_back(u);
      }
    }
  }
  return out;
}

StateSet Checker::eu_raw(const StateSet& f, const StateSet& g) const {
  return backward_reach(f, g);
}

std::pair<std::vector<int>, int> Checker::scc_of(const StateSet& f) const {
  // Iterative Tarjan over the subgraph induced by f.
  const std::size_t n = graph_.num_states();
  std::vector<int> comp(n, -1);
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<StateId> stack;
  int next_index = 0;
  int num_comps = 0;

  struct Frame {
    StateId v;
    std::size_t child;
  };
  std::vector<Frame> call;

  for (StateId root = 0; root < n; ++root) {
    if (!f[root] || index[root] != -1) continue;
    call.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call.empty()) {
      Frame& fr = call.back();
      const StateId v = fr.v;
      if (fr.child < graph_.succ[v].size()) {
        const StateId w = graph_.succ[v][fr.child++];
        if (!f[w]) continue;
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        for (;;) {
          const StateId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = num_comps;
          if (w == v) break;
        }
        ++num_comps;
      }
      call.pop_back();
      if (!call.empty()) {
        lowlink[call.back().v] =
            std::min(lowlink[call.back().v], lowlink[v]);
      }
    }
  }
  return {std::move(comp), num_comps};
}

StateSet Checker::eg_raw(const StateSet& f) const {
  // Good components: nontrivial SCCs of the f-subgraph.
  const auto [comp, num_comps] = scc_of(f);
  const std::size_t n = graph_.num_states();
  std::vector<int> comp_size(num_comps, 0);
  std::vector<bool> comp_cycle(num_comps, false);
  for (StateId v = 0; v < n; ++v) {
    if (comp[v] < 0) continue;
    ++comp_size[comp[v]];
    for (const StateId w : graph_.succ[v]) {
      if (w == v && f[w]) comp_cycle[comp[v]] = true;
    }
  }
  StateSet good = make_all(n, false);
  for (StateId v = 0; v < n; ++v) {
    if (comp[v] >= 0 && (comp_size[comp[v]] > 1 || comp_cycle[comp[v]])) {
      good[v] = true;
    }
  }
  return backward_reach(f, good);
}

StateSet Checker::eg(const StateSet& f) const {
  if (graph_.fairness.empty()) return eg_raw(f);
  // Fair SCCs: nontrivial SCCs of the f-subgraph intersecting every
  // fairness set.
  const auto [comp, num_comps] = scc_of(f);
  const std::size_t n = graph_.num_states();
  std::vector<int> comp_size(num_comps, 0);
  std::vector<bool> comp_cycle(num_comps, false);
  std::vector<std::vector<bool>> comp_hits(
      graph_.fairness.size(), std::vector<bool>(num_comps, false));
  for (StateId v = 0; v < n; ++v) {
    if (comp[v] < 0) continue;
    ++comp_size[comp[v]];
    for (const StateId w : graph_.succ[v]) {
      if (w == v && f[w]) comp_cycle[comp[v]] = true;
    }
    for (std::size_t k = 0; k < graph_.fairness.size(); ++k) {
      if (graph_.fairness[k][v]) comp_hits[k][comp[v]] = true;
    }
  }
  StateSet good = make_all(n, false);
  for (StateId v = 0; v < n; ++v) {
    const int c = comp[v];
    if (c < 0 || (comp_size[c] == 1 && !comp_cycle[c])) continue;
    bool all = true;
    for (std::size_t k = 0; k < graph_.fairness.size() && all; ++k) {
      all = comp_hits[k][c];
    }
    if (all) good[v] = true;
  }
  return backward_reach(f, good);
}

const StateSet& Checker::fair_states() const {
  if (!have_fair_) {
    fair_ = eg(make_all(graph_.num_states(), true));
    have_fair_ = true;
  }
  return fair_;
}

StateSet Checker::ex(const StateSet& f) const {
  StateSet g = f;
  // Match the symbolic checker: successors must start a fair path.
  const StateSet& fair = fair_states();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = g[i] && fair[i];
  return ex_raw(g);
}

StateSet Checker::eu(const StateSet& f, const StateSet& g) const {
  StateSet gg = g;
  const StateSet& fair = fair_states();
  for (std::size_t i = 0; i < gg.size(); ++i) gg[i] = gg[i] && fair[i];
  return eu_raw(f, gg);
}

// ---------------------------------------------------------------------------
// Explicit witness generation (EMC-style)
// ---------------------------------------------------------------------------

namespace {

/// Shortest path within `allowed` from `from` to any state of `target`
/// (both endpoints must satisfy `allowed`); empty vector if unreachable.
/// The path includes both endpoints; a trivial path is {from} when from
/// is already a target.
std::vector<StateId> bfs_path(const Graph& graph, StateId from,
                              const StateSet& allowed,
                              const StateSet& target) {
  if (!allowed[from]) return {};
  if (target[from]) return {from};
  constexpr StateId kUnset = 0xFFFFFFFFu;
  std::vector<StateId> parent(graph.num_states(), kUnset);
  std::deque<StateId> work{from};
  parent[from] = from;
  while (!work.empty()) {
    const StateId u = work.front();
    work.pop_front();
    for (const StateId v : graph.succ[u]) {
      if (!allowed[v] || parent[v] != kUnset) continue;
      parent[v] = u;
      if (target[v]) {
        std::vector<StateId> path;
        for (StateId w = v; w != from; w = parent[w]) path.push_back(w);
        path.push_back(from);
        std::reverse(path.begin(), path.end());
        return path;
      }
      work.push_back(v);
    }
  }
  return {};
}

}  // namespace

std::optional<FiniteWitness> eu_witness(const Graph& graph, StateId start,
                                        const StateSet& f,
                                        const StateSet& g) {
  if (start >= graph.num_states()) return std::nullopt;
  FiniteWitness out;
  if (g[start]) {
    out.prefix = {start};
    return out;
  }
  if (!f[start]) return std::nullopt;
  // BFS through f-states only; an edge into a g-state terminates (the
  // endpoint itself need not satisfy f).
  constexpr StateId kUnset = 0xFFFFFFFFu;
  std::vector<StateId> parent(graph.num_states(), kUnset);
  std::deque<StateId> work{start};
  parent[start] = start;
  while (!work.empty()) {
    const StateId u = work.front();
    work.pop_front();
    for (const StateId v : graph.succ[u]) {
      if (parent[v] != kUnset) continue;
      parent[v] = u;
      if (g[v]) {
        std::vector<StateId> path;
        for (StateId w = v; w != start; w = parent[w]) path.push_back(w);
        path.push_back(start);
        std::reverse(path.begin(), path.end());
        out.prefix = std::move(path);
        return out;
      }
      if (f[v]) work.push_back(v);
    }
  }
  return std::nullopt;
}

std::optional<FiniteWitness> eg_witness(const Graph& graph, StateId start,
                                        const StateSet& f) {
  Checker checker(graph);
  const StateSet eg = checker.eg(f);
  if (start >= graph.num_states() || !eg[start]) return std::nullopt;

  // Locate the fair SCCs of the f-subgraph (as in Checker::eg).
  const auto [comp, num_comps] = checker.scc_of(f);
  std::vector<int> comp_size(num_comps, 0);
  std::vector<bool> comp_cycle(num_comps, false);
  std::vector<std::vector<bool>> hits(
      graph.fairness.size(), std::vector<bool>(num_comps, false));
  for (StateId v = 0; v < graph.num_states(); ++v) {
    if (comp[v] < 0) continue;
    ++comp_size[comp[v]];
    for (const StateId w : graph.succ[v]) {
      if (w == v && f[w]) comp_cycle[comp[v]] = true;
    }
    for (std::size_t k = 0; k < graph.fairness.size(); ++k) {
      if (graph.fairness[k][v]) hits[k][comp[v]] = true;
    }
  }
  StateSet in_fair_scc(graph.num_states(), false);
  for (StateId v = 0; v < graph.num_states(); ++v) {
    const int c = comp[v];
    if (c < 0 || (comp_size[c] == 1 && !comp_cycle[c])) continue;
    bool all = true;
    for (std::size_t k = 0; k < graph.fairness.size() && all; ++k) {
      all = hits[k][c];
    }
    if (all) in_fair_scc[v] = true;
  }

  // Prefix: shortest f-path from start into a fair SCC.
  const std::vector<StateId> prefix = bfs_path(graph, start, f, in_fair_scc);
  if (prefix.empty()) return std::nullopt;
  const StateId anchor = prefix.back();
  const int scc = comp[anchor];

  // Cycle: inside the SCC, hop from fairness set to fairness set, then
  // close back to the anchor.
  StateSet in_scc(graph.num_states(), false);
  for (StateId v = 0; v < graph.num_states(); ++v) {
    in_scc[v] = comp[v] == scc;
  }
  std::vector<StateId> cycle{anchor};
  for (std::size_t k = 0; k < graph.fairness.size(); ++k) {
    StateSet target(graph.num_states(), false);
    bool already = false;
    for (const StateId v : cycle) already = already || graph.fairness[k][v];
    if (already) continue;
    for (StateId v = 0; v < graph.num_states(); ++v) {
      target[v] = in_scc[v] && graph.fairness[k][v];
    }
    const std::vector<StateId> hop =
        bfs_path(graph, cycle.back(), in_scc, target);
    cycle.insert(cycle.end(), hop.begin() + 1, hop.end());
  }
  // Close the cycle with a nontrivial path back to the anchor.
  std::vector<StateId> back;
  StateSet anchor_only(graph.num_states(), false);
  anchor_only[anchor] = true;
  for (const StateId v : graph.succ[cycle.back()]) {
    if (!in_scc[v]) continue;
    const std::vector<StateId> tail =
        bfs_path(graph, v, in_scc, anchor_only);
    if (!tail.empty()) {
      back = tail;
      break;
    }
  }
  if (back.empty()) return std::nullopt;  // cannot happen in an SCC
  cycle.insert(cycle.end(), back.begin(), back.end());
  cycle.pop_back();  // the final anchor wraps around

  FiniteWitness out;
  out.prefix.assign(prefix.begin(), prefix.end() - 1);
  out.cycle = std::move(cycle);
  return out;
}

// ---------------------------------------------------------------------------
// Exact minimal finite witness (Theorem 1)
// ---------------------------------------------------------------------------

std::optional<FiniteWitness> minimal_finite_witness(const Graph& graph,
                                                    StateId start,
                                                    const StateSet& f) {
  const std::size_t n = graph.num_states();
  const std::size_t num_constraints = graph.fairness.size();
  if (num_constraints > 20) {
    throw std::invalid_argument(
        "minimal_finite_witness: too many fairness constraints (limit 20; "
        "the search is exponential in their number)");
  }
  if (start >= n || !f[start]) return std::nullopt;
  const std::uint32_t full_mask = (1u << num_constraints) - 1;
  std::vector<std::uint32_t> mask(n, 0);
  for (std::size_t k = 0; k < num_constraints; ++k) {
    for (StateId v = 0; v < n; ++v) {
      if (graph.fairness[k][v]) mask[v] |= 1u << k;
    }
  }

  // Shortest f-path distances (and parents) from start.
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(n, kInf);
  std::vector<StateId> parent(n, 0);
  std::deque<StateId> work{start};
  dist[start] = 0;
  while (!work.empty()) {
    const StateId u = work.front();
    work.pop_front();
    for (const StateId v : graph.succ[u]) {
      if (f[v] && dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        parent[v] = u;
        work.push_back(v);
      }
    }
  }

  // Prune anchors: a cycle through c stays inside c's SCC of the
  // f-subgraph, so the SCC must be nontrivial and cover all constraints.
  Checker pruner(graph);
  const auto [comp, num_comps] = pruner.scc_of(f);
  std::vector<int> comp_size(num_comps, 0);
  std::vector<bool> comp_cycle(num_comps, false);
  std::vector<std::uint32_t> comp_mask(num_comps, 0);
  for (StateId v = 0; v < n; ++v) {
    if (comp[v] < 0) continue;
    ++comp_size[comp[v]];
    comp_mask[comp[v]] |= mask[v];
    for (const StateId w : graph.succ[v]) {
      if (w == v && f[w]) comp_cycle[comp[v]] = true;
    }
  }

  FiniteWitness best;
  std::size_t best_len = std::numeric_limits<std::size_t>::max();

  // Per-anchor BFS over (state, visited-constraints mask).
  const std::size_t num_masks = std::size_t{1} << num_constraints;
  std::vector<std::uint32_t> bfs_dist(n * num_masks);
  std::vector<std::uint32_t> bfs_parent(n * num_masks);
  for (StateId c = 0; c < n; ++c) {
    if (dist[c] == kInf || comp[c] < 0) continue;
    const int cc = comp[c];
    if ((comp_size[cc] == 1 && !comp_cycle[cc]) || comp_mask[cc] != full_mask) {
      continue;
    }
    if (dist[c] + 1 >= best_len) continue;  // cycle has length >= 1
    std::fill(bfs_dist.begin(), bfs_dist.end(), kInf);
    auto id = [&](StateId v, std::uint32_t m) { return v * num_masks + m; };
    std::deque<std::uint32_t> q;
    const std::uint32_t src = id(c, mask[c]);
    bfs_dist[src] = 0;
    q.push_back(src);
    // We look for an edge back to c that completes the full mask; the
    // closing edge is detected on the predecessor so the search also finds
    // cycles whose (c, full_mask) node coincides with the source.
    std::uint32_t goal_pred = kInf;
    while (!q.empty() && goal_pred == kInf) {
      const std::uint32_t cur = q.front();
      q.pop_front();
      const StateId v = static_cast<StateId>(cur / num_masks);
      const auto m = static_cast<std::uint32_t>(cur % num_masks);
      if (bfs_dist[cur] + 1 + dist[c] >= best_len) break;  // bound
      for (const StateId w : graph.succ[v]) {
        if (!f[w]) continue;
        const std::uint32_t nm = m | mask[w];
        if (w == c && nm == full_mask) {
          goal_pred = cur;
          break;
        }
        const std::uint32_t nxt = id(w, nm);
        if (bfs_dist[nxt] != kInf) continue;
        bfs_dist[nxt] = bfs_dist[cur] + 1;
        bfs_parent[nxt] = cur;
        q.push_back(nxt);
      }
    }
    if (goal_pred == kInf) continue;
    const std::size_t cycle_len = bfs_dist[goal_pred] + 1;
    const std::size_t total = dist[c] + cycle_len;
    if (total >= best_len) continue;
    best_len = total;
    // Cycle states: c ... (predecessor of the closing edge), in order.
    std::vector<StateId> cycle;
    for (std::uint32_t cur = goal_pred;; cur = bfs_parent[cur]) {
      cycle.push_back(static_cast<StateId>(cur / num_masks));
      if (cur == src && bfs_dist[cur] == 0) break;
    }
    std::reverse(cycle.begin(), cycle.end());
    // Prefix: start -> ... -> predecessor of c.
    std::vector<StateId> prefix;
    for (StateId v = c; v != start; v = parent[v]) prefix.push_back(v);
    prefix.push_back(start);
    std::reverse(prefix.begin(), prefix.end());
    prefix.pop_back();  // drop c; the cycle starts at c
    best.prefix = std::move(prefix);
    best.cycle = std::move(cycle);
  }

  if (best_len == std::numeric_limits<std::size_t>::max()) return std::nullopt;
  return best;
}

}  // namespace symcex::enumerative
