#include "explicit/explicit_graph.hpp"

#include <deque>
#include <map>
#include <stdexcept>

namespace symcex::enumerative {

std::vector<std::vector<StateId>> Graph::predecessors() const {
  std::vector<std::vector<StateId>> pred(succ.size());
  for (StateId u = 0; u < succ.size(); ++u) {
    for (const StateId v : succ[u]) pred[v].push_back(u);
  }
  return pred;
}

Enumerated enumerate(const ts::TransitionSystem& ts, std::size_t max_states) {
  if (!ts.finalized()) {
    throw std::invalid_argument("enumerate: transition system not finalized");
  }
  Enumerated out;
  // Map by BDD node identity (one manager, minterms are canonical).
  std::map<bdd::Bdd, StateId> ids;

  auto intern = [&](const bdd::Bdd& state) {
    const auto it = ids.find(state);
    if (it != ids.end()) return it->second;
    if (out.concrete.size() >= max_states) {
      throw std::length_error(
          "enumerate: state explosion -- more than " +
          std::to_string(max_states) + " reachable states");
    }
    const StateId id = out.graph.add_state();
    out.concrete.push_back(state);
    ids.emplace(state, id);
    return id;
  };

  std::deque<StateId> queue;
  bdd::Bdd init_left = ts.init();
  while (!init_left.is_false()) {
    const bdd::Bdd s = ts.pick_state(init_left);
    init_left -= s;
    const StateId id = intern(s);
    out.graph.init.push_back(id);
    queue.push_back(id);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const StateId u = queue[head];
    bdd::Bdd img = ts.image(out.concrete[u]);
    while (!img.is_false()) {
      const bdd::Bdd t = ts.pick_state(img);
      img -= t;
      const bool known = ids.contains(t);
      const StateId v = intern(t);
      out.graph.add_edge(u, v);
      if (!known) queue.push_back(v);
    }
  }

  for (const auto& [name, set] : ts.labels()) {
    std::vector<bool> bits(out.graph.num_states());
    for (StateId i = 0; i < bits.size(); ++i) {
      bits[i] = out.concrete[i].intersects(set);
    }
    out.graph.labels.emplace(name, std::move(bits));
  }
  for (const auto& h : ts.fairness()) {
    std::vector<bool> bits(out.graph.num_states());
    for (StateId i = 0; i < bits.size(); ++i) {
      bits[i] = out.concrete[i].intersects(h);
    }
    out.graph.fairness.push_back(std::move(bits));
  }
  return out;
}

}  // namespace symcex::enumerative
